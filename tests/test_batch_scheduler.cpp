#include "serve/scheduler.h"

#include <gtest/gtest.h>

#include <vector>

#include "kvcache/policy_factory.h"
#include "mem/block_pool.h"
#include "mem/prefix_index.h"

namespace kf::serve {
namespace {

Sequence make_seq(std::size_t prompt_len, double cache_ratio,
                  std::size_t max_new = 8, std::size_t arrival = 0) {
  Sequence s;
  s.prompt.assign(prompt_len, 1);
  s.gen.max_new_tokens = max_new;
  s.gen.cache_ratio = cache_ratio;
  s.arrival_step = arrival;
  s.budget = kv::make_budget(prompt_len, cache_ratio);
  return s;
}

TEST(SequenceCost, BudgetedSequenceCostsSteadyStateFootprint) {
  const Sequence s = make_seq(40, 0.5);
  // k = 20 plus the transient append slot.
  EXPECT_EQ(s.cost_tokens(), 21u);
}

TEST(SequenceCost, FullAttentionCostsFinalLength) {
  const Sequence s = make_seq(40, 1.0, 8);
  EXPECT_EQ(s.cost_tokens(), 48u);
}

TEST(SequenceCost, LowerCacheRatioCostsLess) {
  EXPECT_LT(make_seq(100, 0.25).cost_tokens(),
            make_seq(100, 0.5).cost_tokens());
  EXPECT_LT(make_seq(100, 0.5).cost_tokens(),
            make_seq(100, 1.0).cost_tokens());
}

TEST(SequenceCost, NonEvictingPolicyChargesFullGrowth) {
  // A cache_ratio budget only caps memory when the policy evicts; kFull
  // ignores it and grows to prompt+gen, so it must be charged that.
  Sequence s = make_seq(40, 0.5, 8);
  const auto full = kv::make_policy(kv::PolicyKind::kFull);
  s.policy = full.get();
  EXPECT_EQ(s.cost_tokens(), 48u);
  EXPECT_EQ(s.admission_cost_tokens(), 48u);
}

TEST(SequenceCost, AdmissionChargesPrefillPeak) {
  // Prefill materializes the full prompt per layer before the policy
  // trims, so admission charges max(prompt_len, steady-state).
  EXPECT_EQ(make_seq(40, 0.5).admission_cost_tokens(), 40u);
  // Full attention's steady cost (prompt + gen) already exceeds it.
  EXPECT_EQ(make_seq(40, 1.0, 8).admission_cost_tokens(), 48u);
}

TEST(BatchScheduler, AdmitsUpToBatchSize) {
  BatchScheduler sched({.max_batch_size = 2, .max_concurrent_tokens = 0});
  std::vector<Sequence> seqs;
  for (int i = 0; i < 3; ++i) seqs.push_back(make_seq(16, 0.5));
  for (auto& s : seqs) sched.submit(&s);
  const auto admitted = sched.admit(0);
  EXPECT_EQ(admitted.size(), 2u);
  EXPECT_EQ(sched.active_count(), 2u);
  EXPECT_EQ(sched.waiting_count(), 1u);
  // Releasing one frees a slot for the third.
  sched.release(admitted[0]);
  EXPECT_EQ(sched.admit(0).size(), 1u);
}

TEST(BatchScheduler, TokenBudgetChargesPrefillPeakThenSettles) {
  // Each sequence settles to k+1 = 9 tokens but transiently needs its full
  // 16-token prompt resident during prefill; the budget must cover the
  // charged (not just steady-state) total at every admission.
  BatchScheduler sched({.max_batch_size = 0, .max_concurrent_tokens = 25});
  std::vector<Sequence> seqs;
  for (int i = 0; i < 3; ++i) seqs.push_back(make_seq(16, 0.5));
  for (auto& s : seqs) sched.submit(&s);

  // Two un-settled prefill charges (16 + 16) exceed 25: one at a time.
  auto admitted = sched.admit(0);
  ASSERT_EQ(admitted.size(), 1u);
  EXPECT_EQ(sched.tokens_in_use(), 16u);
  sched.settle(admitted[0]);
  EXPECT_EQ(sched.tokens_in_use(), 9u);

  // 9 settled + 16 prefilling = 25 fits exactly.
  admitted = sched.admit(0);
  ASSERT_EQ(admitted.size(), 1u);
  EXPECT_EQ(sched.tokens_in_use(), 25u);
  sched.settle(admitted[0]);
  EXPECT_EQ(sched.tokens_in_use(), 18u);

  // 18 settled + 16 > 25: the third waits for a release.
  EXPECT_TRUE(sched.admit(0).empty());
  sched.release(sched.active()[0]);
  EXPECT_EQ(sched.tokens_in_use(), 9u);
  EXPECT_EQ(sched.admit(0).size(), 1u);
}

TEST(BatchScheduler, ReducedCacheRatioAdmitsMoreSequences) {
  // The Table 1 mechanism: at half the cache ratio, roughly twice the
  // sequences fit the same token budget.
  const std::size_t budget_tokens = 200;
  const auto admitted_at = [&](double ratio) {
    BatchScheduler sched(
        {.max_batch_size = 0, .max_concurrent_tokens = budget_tokens});
    std::vector<Sequence> seqs;
    seqs.reserve(16);
    for (int i = 0; i < 16; ++i) seqs.push_back(make_seq(64, ratio));
    for (auto& s : seqs) sched.submit(&s);
    // Drive to steady state: admit, settle (prefill completes), repeat
    // until the budget blocks further admission.
    while (true) {
      const auto admitted = sched.admit(0);
      if (admitted.empty()) break;
      for (Sequence* s : admitted) sched.settle(s);
    }
    return sched.active_count();
  };
  const std::size_t at_full = admitted_at(1.0);
  const std::size_t at_half = admitted_at(0.5);
  const std::size_t at_quarter = admitted_at(0.25);
  EXPECT_LT(at_full, at_half);
  EXPECT_LT(at_half, at_quarter);
}

TEST(BatchScheduler, ArrivalStepGatesAdmission) {
  BatchScheduler sched({.max_batch_size = 0, .max_concurrent_tokens = 0});
  Sequence early = make_seq(8, 1.0, 4, /*arrival=*/0);
  Sequence late = make_seq(8, 1.0, 4, /*arrival=*/5);
  sched.submit(&early);
  sched.submit(&late);
  EXPECT_EQ(sched.admit(0).size(), 1u);
  EXPECT_EQ(sched.admit(4).size(), 0u);
  ASSERT_TRUE(sched.next_arrival().has_value());
  EXPECT_EQ(*sched.next_arrival(), 5u);
  EXPECT_EQ(sched.admit(5).size(), 1u);
  EXPECT_FALSE(sched.next_arrival().has_value());
}

TEST(BatchScheduler, StrictFifoHeadOfLineBlocks) {
  // A big head-of-queue request blocks later small ones (no starvation of
  // large requests), even though the small one would fit.
  BatchScheduler sched({.max_batch_size = 0, .max_concurrent_tokens = 60});
  Sequence resident = make_seq(40, 0.5);  // admission charge 40
  Sequence big = make_seq(60, 0.5);       // charge 60 > remaining 20
  Sequence small = make_seq(8, 0.5);      // charge 8, would fit
  sched.submit(&resident);
  ASSERT_EQ(sched.admit(0).size(), 1u);
  sched.submit(&big);
  sched.submit(&small);
  EXPECT_TRUE(sched.admit(0).empty());
  // Once the resident leaves, the big head fits the freed budget, and only
  // then the small one.
  sched.release(&resident);
  auto admitted = sched.admit(0);
  ASSERT_EQ(admitted.size(), 1u);
  EXPECT_EQ(admitted[0], &big);
}

TEST(BatchScheduler, OversizedSequenceRunsSolo) {
  BatchScheduler sched({.max_batch_size = 0, .max_concurrent_tokens = 10});
  Sequence huge = make_seq(100, 1.0, 16);  // cost 116 >> 10
  Sequence other = make_seq(8, 0.5);
  sched.submit(&huge);
  sched.submit(&other);
  const auto admitted = sched.admit(0);
  ASSERT_EQ(admitted.size(), 1u);
  EXPECT_EQ(admitted[0], &huge);
  // Nothing else joins while the oversized sequence occupies the engine.
  EXPECT_TRUE(sched.admit(0).empty());
  sched.release(&huge);
  EXPECT_EQ(sched.admit(0).size(), 1u);
}

TEST(BatchScheduler, ReleaseOrSettleOfInactiveThrows) {
  BatchScheduler sched;
  Sequence s = make_seq(8, 0.5);
  EXPECT_THROW(sched.release(&s), std::invalid_argument);
  EXPECT_THROW(sched.settle(&s), std::invalid_argument);
  EXPECT_THROW(sched.submit(nullptr), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Block mode: admission backed by real reservations on a mem::BlockPool.

mem::BlockPoolConfig block_pool_config(std::size_t shards,
                                       std::size_t blocks_per_shard,
                                       std::size_t block_tokens = 8) {
  mem::BlockPoolConfig cfg;
  cfg.n_shards = shards;
  cfg.blocks_per_shard = blocks_per_shard;
  cfg.block_tokens = block_tokens;
  cfg.n_heads = 2;
  cfg.d_head = 4;
  return cfg;
}

Sequence make_block_seq(std::size_t prompt_len, double cache_ratio,
                        std::size_t n_layers = 2, std::size_t max_new = 8) {
  Sequence s = make_seq(prompt_len, cache_ratio, max_new);
  s.n_layers = n_layers;
  return s;
}

TEST(SequenceCost, BlockDemandRoundsPerLayer) {
  // k = 20 -> steady 21 tokens; block_tokens 8 -> 3 blocks per layer.
  const Sequence s = make_block_seq(40, 0.5, /*n_layers=*/2);
  EXPECT_EQ(s.cost_blocks(8), 6u);
  // Admission peak is the 40-token prompt: 5 blocks per layer.
  EXPECT_EQ(s.admission_cost_blocks(8), 10u);
}

TEST(BatchScheduler, BlockModeReservesAndSettlesRealBlocks) {
  mem::BlockPool pool(block_pool_config(1, 12));
  SchedulerConfig cfg;
  cfg.max_batch_size = 0;
  cfg.pool = &pool;
  BatchScheduler sched(cfg);

  Sequence s = make_block_seq(40, 0.5);  // admit 10 blocks, steady 6
  sched.submit(&s);
  ASSERT_EQ(sched.admit(0).size(), 1u);
  EXPECT_EQ(s.shard, 0u);
  EXPECT_EQ(s.reserved_blocks, 10u);
  EXPECT_EQ(sched.blocks_in_use(), 10u);
  EXPECT_EQ(pool.shard_stats(0).reserved_blocks, 10u);

  sched.settle(&s);
  EXPECT_EQ(s.reserved_blocks, 6u);
  EXPECT_EQ(pool.shard_stats(0).reserved_blocks, 6u);

  sched.release(&s);
  EXPECT_EQ(sched.blocks_in_use(), 0u);
  EXPECT_EQ(pool.shard_stats(0).reserved_blocks, 0u);
  EXPECT_EQ(s.shard, Sequence::kNoShard);
}

TEST(BatchScheduler, BlockModeChargesFragmentationTokenModeHides) {
  // Two sequences of steady cost 21 tokens = 3 blocks of 8 per layer x 2
  // layers = 6 blocks each after settle, but 10 at admission. A pool of
  // 12 blocks fits them only sequentially: the second must wait for the
  // first's settle, and a third can never join while both are resident —
  // even though a 48-token *token* budget would have admitted 2 at once.
  mem::BlockPool pool(block_pool_config(1, 12));
  SchedulerConfig cfg;
  cfg.max_batch_size = 0;
  cfg.pool = &pool;
  BatchScheduler sched(cfg);

  Sequence a = make_block_seq(40, 0.5);
  Sequence b = make_block_seq(40, 0.5);
  sched.submit(&a);
  sched.submit(&b);
  ASSERT_EQ(sched.admit(0).size(), 1u);  // only a fits its prefill peak
  sched.settle(&a);                      // 6 reserved; 6 free
  ASSERT_EQ(sched.admit(0).size(), 0u);  // b's peak (10) still too big
  sched.release(&a);
  ASSERT_EQ(sched.admit(0).size(), 1u);
}

TEST(BatchScheduler, LeastLoadedPlacementSpreadsAcrossShards) {
  mem::BlockPool pool(block_pool_config(2, 16));
  SchedulerConfig cfg;
  cfg.max_batch_size = 0;
  cfg.pool = &pool;
  BatchScheduler sched(cfg);

  Sequence a = make_block_seq(40, 0.5);
  Sequence b = make_block_seq(40, 0.5);
  sched.submit(&a);
  sched.submit(&b);
  ASSERT_EQ(sched.admit(0).size(), 2u);
  EXPECT_NE(a.shard, b.shard);
}

TEST(BatchScheduler, RoundRobinPlacementCyclesShards) {
  mem::BlockPool pool(block_pool_config(3, 32));
  SchedulerConfig cfg;
  cfg.max_batch_size = 0;
  cfg.pool = &pool;
  cfg.placement = ShardPlacement::kRoundRobin;
  BatchScheduler sched(cfg);

  std::vector<Sequence> seqs;
  for (std::size_t i = 0; i < 3; ++i) {
    seqs.push_back(make_block_seq(16, 0.5));
  }
  for (auto& s : seqs) sched.submit(&s);
  ASSERT_EQ(sched.admit(0).size(), 3u);
  EXPECT_EQ(seqs[0].shard, 0u);
  EXPECT_EQ(seqs[1].shard, 1u);
  EXPECT_EQ(seqs[2].shard, 2u);
}

TEST(BatchScheduler, RoundRobinSkipsShardsThatCannotFit) {
  // Shard 0's capacity is consumed; the cursor must move on to shard 1
  // instead of stalling the queue, and the cursor advances from the shard
  // actually used.
  mem::BlockPool pool(block_pool_config(3, 10));
  ASSERT_TRUE(pool.try_reserve(0, 10));  // shard 0 full
  SchedulerConfig cfg;
  cfg.max_batch_size = 0;
  cfg.pool = &pool;
  cfg.placement = ShardPlacement::kRoundRobin;
  BatchScheduler sched(cfg);

  Sequence a = make_block_seq(40, 0.5);  // 10 admission blocks
  Sequence b = make_block_seq(40, 0.5);
  sched.submit(&a);
  sched.submit(&b);
  ASSERT_EQ(sched.admit(0).size(), 2u);
  EXPECT_EQ(a.shard, 1u);  // skipped full shard 0
  EXPECT_EQ(b.shard, 2u);  // cursor continued past a's placement
  pool.unreserve(0, 10);
}

TEST(BatchScheduler, LeastLoadedPicksFewestReservedAndTieBreaksLowestId) {
  mem::BlockPool pool(block_pool_config(3, 32));
  ASSERT_TRUE(pool.try_reserve(0, 8));  // load: 8 / 2 / 2
  ASSERT_TRUE(pool.try_reserve(1, 2));
  ASSERT_TRUE(pool.try_reserve(2, 2));
  SchedulerConfig cfg;
  cfg.max_batch_size = 0;
  cfg.pool = &pool;
  BatchScheduler sched(cfg);

  Sequence a = make_block_seq(16, 0.5);
  sched.submit(&a);
  ASSERT_EQ(sched.admit(0).size(), 1u);
  EXPECT_EQ(a.shard, 1u);  // 1 and 2 tie at 2 reserved; lowest id wins
  sched.release(&a);

  ASSERT_TRUE(pool.try_reserve(2, 1));  // load: 8 / 2 / 3
  Sequence b = make_block_seq(16, 0.5);
  sched.submit(&b);
  ASSERT_EQ(sched.admit(0).size(), 1u);
  EXPECT_EQ(b.shard, 1u);  // strictly least loaded
}

TEST(BatchScheduler, RoundRobinVsLeastLoadedDivergeUnderAsymmetricLoad) {
  // Same workload, same pool state: round-robin marches on (0, 1, ...)
  // while least-loaded steers to the emptiest shard first — the
  // observable difference between the two policies.
  for (const bool round_robin : {false, true}) {
    mem::BlockPool pool(block_pool_config(2, 32));
    ASSERT_TRUE(pool.try_reserve(0, 6));  // shard 0 pre-loaded
    SchedulerConfig cfg;
    cfg.max_batch_size = 0;
    cfg.pool = &pool;
    cfg.placement = round_robin ? ShardPlacement::kRoundRobin
                                : ShardPlacement::kLeastLoaded;
    BatchScheduler sched(cfg);
    Sequence s = make_block_seq(16, 0.5);
    sched.submit(&s);
    ASSERT_EQ(sched.admit(0).size(), 1u);
    EXPECT_EQ(s.shard, round_robin ? 0u : 1u);
  }
}

TEST(BatchScheduler, BlockModeOversizedDemandIsRejectedNotDeadlocked) {
  // A demand above a whole shard can never be satisfied; the scheduler
  // marks it kRejected and moves on so the FIFO head cannot deadlock the
  // queue — and the sequence behind it is admitted in the same round.
  mem::BlockPool pool(block_pool_config(1, 4));
  SchedulerConfig cfg;
  cfg.pool = &pool;
  BatchScheduler sched(cfg);
  Sequence huge = make_block_seq(100, 1.0);  // far beyond 4 blocks
  Sequence ok = make_block_seq(8, 1.0);
  sched.submit(&huge);
  sched.submit(&ok);
  const auto admitted = sched.admit(0);
  ASSERT_EQ(admitted.size(), 1u);
  EXPECT_EQ(admitted[0], &ok);
  const auto rejected = sched.take_rejected();
  ASSERT_EQ(rejected.size(), 1u);
  EXPECT_EQ(rejected[0], &huge);
  EXPECT_EQ(huge.status, SequenceStatus::kFinished);
  EXPECT_EQ(huge.finish, FinishReason::kRejected);
  EXPECT_FALSE(huge.error.empty());
  // Drained: a second take returns nothing.
  EXPECT_TRUE(sched.take_rejected().empty());
}

// ---------------------------------------------------------------------------
// Prefix-cache-aware admission: shared chains reduce the charged demand.

/// Indexes a `tokens`-long run (must be whole blocks) built on `shard`,
/// returning the entry (the builder state is torn down; the index keeps
/// the chain alive).
const mem::PrefixEntry* index_prefix(mem::BlockPool& pool,
                                     mem::PrefixIndex& index,
                                     std::size_t shard, std::size_t tokens) {
  kv::SequenceKvState state(pool, shard, 2);
  std::vector<mem::PrefixToken> run(tokens);
  for (std::size_t i = 0; i < tokens; ++i) {
    run[i] = static_cast<mem::PrefixToken>(i);
  }
  for (std::size_t l = 0; l < 2; ++l) {
    auto& cache = state.layer(l);
    const std::vector<float> row(cache.row_width(), 1.0F);
    for (std::size_t t = 0; t < tokens; ++t) cache.append(row, row, t);
  }
  return index.insert(run, state, {});
}

TEST(SequenceCost, UnsharedAdmissionBlocksSubtractResidentPrefix) {
  // 40-token prompt at ratio 0.5, block_tokens 8: full admission is 5
  // blocks/layer. A 24-token (3-block) shared prefix leaves a 16-token
  // suffix (2 blocks) plus worst-case CoW of the shared blocks, bounded
  // by the steady footprint (3 blocks): 2 + 3 = 5... capped by full (5).
  Sequence s = make_block_seq(40, 0.5);
  EXPECT_EQ(s.admission_cost_blocks(8), 10u);
  s.prefix_blocks_per_layer = 3;
  // Without an entry the reduced form still computes (the scheduler only
  // consults it when an entry is pinned).
  EXPECT_EQ(s.unshared_admission_blocks(8), 10u);

  // A longer prefix (32 tokens = 4 blocks): suffix 1 block + min(4,
  // steady 3) = 4 blocks/layer -> 8 total, below the full 10.
  s.prefix_blocks_per_layer = 4;
  EXPECT_EQ(s.unshared_admission_blocks(8), 8u);

  // Non-evicting full attention never copies: charge full minus prefix.
  Sequence full_s = make_block_seq(40, 1.0, /*n_layers=*/2, /*max_new=*/8);
  const auto full_policy = kv::make_policy(kv::PolicyKind::kFull);
  full_s.policy = full_policy.get();
  EXPECT_EQ(full_s.admission_cost_blocks(8), 12u);  // 48 tokens -> 6/layer
  full_s.prefix_blocks_per_layer = 4;
  EXPECT_EQ(full_s.unshared_admission_blocks(8), 4u);  // (6 - 4) * 2
}

TEST(BatchScheduler, PrefixAffinityPlacesOnResidentShardAtReducedCharge) {
  mem::BlockPool pool(block_pool_config(2, 32));
  mem::PrefixIndexConfig ic;
  ic.n_layers = 2;
  mem::PrefixIndex index(pool, ic);
  // Chain resident on shard 1 only (least-loaded alone would pick the
  // emptier shard 0: shard 1 already carries the index's reservation).
  const mem::PrefixEntry* entry = index_prefix(pool, index, 1, 32);
  ASSERT_NE(entry, nullptr);
  ASSERT_EQ(pool.shard_stats(1).reserved_blocks, 8u);

  SchedulerConfig cfg;
  cfg.max_batch_size = 0;
  cfg.pool = &pool;
  cfg.prefix_index = &index;
  BatchScheduler sched(cfg);

  Sequence s = make_block_seq(40, 0.5);
  s.prefix_entry = entry;
  s.prefix_blocks_per_layer = 4;
  sched.submit(&s);
  ASSERT_EQ(sched.admit(0).size(), 1u);
  EXPECT_EQ(s.shard, 1u);  // affinity beats least-loaded
  EXPECT_EQ(s.reserved_blocks, s.unshared_admission_blocks(8));
  EXPECT_LT(s.reserved_blocks, s.admission_cost_blocks(8));
}

TEST(BatchScheduler, PrefixSequenceFallsBackToFullChargeElsewhere) {
  // The resident shard cannot take even the reduced demand; placement
  // falls back to another shard at the full charge.
  mem::BlockPool pool(block_pool_config(2, 12));
  mem::PrefixIndexConfig ic;
  ic.n_layers = 2;
  mem::PrefixIndex index(pool, ic);
  const mem::PrefixEntry* entry = index_prefix(pool, index, 1, 32);
  ASSERT_NE(entry, nullptr);
  ASSERT_TRUE(pool.try_reserve(1, 4));  // shard 1: 8 index + 4 = full

  SchedulerConfig cfg;
  cfg.max_batch_size = 0;
  cfg.pool = &pool;
  cfg.prefix_index = &index;
  BatchScheduler sched(cfg);
  Sequence s = make_block_seq(40, 0.5);
  s.prefix_entry = entry;
  s.prefix_blocks_per_layer = 4;
  sched.submit(&s);
  ASSERT_EQ(sched.admit(0).size(), 1u);
  EXPECT_EQ(s.shard, 0u);
  EXPECT_EQ(s.reserved_blocks, s.admission_cost_blocks(8));
  pool.unreserve(1, 4);
}

TEST(BatchScheduler, BlockModeRequiresLayerCount) {
  mem::BlockPool pool(block_pool_config(1, 8));
  SchedulerConfig cfg;
  cfg.pool = &pool;
  BatchScheduler sched(cfg);
  Sequence s = make_seq(8, 0.5);  // n_layers left 0
  EXPECT_THROW(sched.submit(&s), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Robustness: preemption bookkeeping, victim selection, reservation retry.

TEST(BatchScheduler, PreemptFreesChargesAndRequeuesBehindArrivedWaiters) {
  mem::BlockPool pool(block_pool_config(1, 12));
  SchedulerConfig cfg;
  cfg.pool = &pool;
  BatchScheduler sched(cfg);
  Sequence a = make_block_seq(40, 0.5);  // 10 admission blocks: fills pool
  Sequence b = make_block_seq(40, 0.5, 2, 8);
  b.arrival_step = 1;
  Sequence late = make_block_seq(8, 0.5, 2, 8);
  late.arrival_step = 100;  // still in the future at preemption time
  sched.submit(&a);
  sched.submit(&b);
  sched.submit(&late);
  ASSERT_EQ(sched.admit(0).size(), 1u);
  EXPECT_EQ(sched.blocks_in_use(), 10u);
  ASSERT_EQ(sched.admit(5).size(), 0u);  // b starved behind a

  sched.preempt(&a, 5);
  EXPECT_EQ(a.status, SequenceStatus::kWaiting);
  EXPECT_EQ(a.preemptions, 1u);
  EXPECT_EQ(a.queue_enter_step, 5u);
  EXPECT_EQ(a.charged_tokens, 0u);
  EXPECT_EQ(a.reserved_blocks, 0u);
  EXPECT_EQ(a.shard, Sequence::kNoShard);
  EXPECT_EQ(sched.blocks_in_use(), 0u);
  EXPECT_EQ(sched.tokens_in_use(), 0u);
  EXPECT_EQ(pool.stats().reserved_blocks, 0u);
  // Victim re-queues behind the arrived waiter b but ahead of the future
  // arrival `late`: the starved head gets the freed budget first.
  ASSERT_EQ(sched.waiting_count(), 3u);
  EXPECT_EQ(sched.waiting()[0], &b);
  EXPECT_EQ(sched.waiting()[1], &a);
  EXPECT_EQ(sched.waiting()[2], &late);
  const auto admitted = sched.admit(5);
  ASSERT_EQ(admitted.size(), 1u);
  EXPECT_EQ(admitted[0], &b);
}

TEST(BatchScheduler, PickVictimHonorsAgeFloorAndPreemptionCap) {
  mem::BlockPool pool(block_pool_config(1, 32));
  SchedulerConfig cfg;
  cfg.pool = &pool;
  BatchScheduler sched(cfg);
  Sequence a = make_block_seq(16, 0.5);  // arrival 0
  Sequence b = make_block_seq(16, 0.5, 2, 8);
  b.arrival_step = 2;
  sched.submit(&a);
  sched.submit(&b);
  ASSERT_EQ(sched.admit(0).size(), 1u);
  ASSERT_EQ(sched.admit(2).size(), 1u);

  // Youngest arrival (b) pays, but only once old enough.
  EXPECT_EQ(sched.pick_victim(3, /*min_age=*/4, /*max_preempt=*/8), nullptr);
  EXPECT_EQ(sched.pick_victim(6, 4, 8), &b);
  // At its preemption cap, b is shielded and the pick falls back to a.
  b.preemptions = 8;
  EXPECT_EQ(sched.pick_victim(6, 4, 8), &a);
  // Cap 0 = uncapped: b is the victim again.
  EXPECT_EQ(sched.pick_victim(6, 4, 0), &b);
  // Nobody qualifies when everyone is capped.
  a.preemptions = 8;
  EXPECT_EQ(sched.pick_victim(6, 4, 8), nullptr);
}

/// Injector that vetoes every reservation, forever.
class AlwaysFailReserve final : public mem::FaultInjector {
 public:
  bool should_fail(mem::FaultOp op, std::size_t /*shard*/) override {
    return op == mem::FaultOp::kReserve;
  }
};

TEST(BatchScheduler, ReservationDeniedRetriesThenRejectsAtCap) {
  mem::BlockPool pool(block_pool_config(1, 12));
  AlwaysFailReserve inject;
  pool.set_fault_injector(&inject);
  SchedulerConfig cfg;
  cfg.pool = &pool;
  cfg.max_reserve_retries = 3;
  BatchScheduler sched(cfg);
  Sequence s = make_block_seq(16, 0.5);
  sched.submit(&s);
  // Rounds 1..3: fits() says yes, try_reserve loses; the admission rolls
  // back cleanly each time and the sequence stays at the queue head.
  for (int round = 0; round < 3; ++round) {
    EXPECT_TRUE(sched.admit(0).empty());
    EXPECT_EQ(s.status, SequenceStatus::kWaiting);
    EXPECT_EQ(s.charged_tokens, 0u);
    EXPECT_EQ(sched.tokens_in_use(), 0u);
    EXPECT_EQ(sched.waiting_count(), 1u);
  }
  EXPECT_EQ(sched.reservation_retries(), 3u);
  // Round 4 crosses max_reserve_retries: rejected, queue drained.
  EXPECT_TRUE(sched.admit(0).empty());
  EXPECT_EQ(s.finish, FinishReason::kRejected);
  EXPECT_FALSE(s.error.empty());
  EXPECT_EQ(sched.waiting_count(), 0u);
  ASSERT_EQ(sched.take_rejected().size(), 1u);
  // The moment the faults stop, a fresh sequence admits normally.
  pool.set_fault_injector(nullptr);
  Sequence ok = make_block_seq(16, 0.5);
  sched.submit(&ok);
  EXPECT_EQ(sched.admit(0).size(), 1u);
  sched.release(&ok);
}

}  // namespace
}  // namespace kf::serve
