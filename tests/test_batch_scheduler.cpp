#include "serve/scheduler.h"

#include <gtest/gtest.h>

#include <vector>

#include "kvcache/policy_factory.h"
#include "mem/block_pool.h"

namespace kf::serve {
namespace {

Sequence make_seq(std::size_t prompt_len, double cache_ratio,
                  std::size_t max_new = 8, std::size_t arrival = 0) {
  Sequence s;
  s.prompt.assign(prompt_len, 1);
  s.gen.max_new_tokens = max_new;
  s.gen.cache_ratio = cache_ratio;
  s.arrival_step = arrival;
  s.budget = kv::make_budget(prompt_len, cache_ratio);
  return s;
}

TEST(SequenceCost, BudgetedSequenceCostsSteadyStateFootprint) {
  const Sequence s = make_seq(40, 0.5);
  // k = 20 plus the transient append slot.
  EXPECT_EQ(s.cost_tokens(), 21u);
}

TEST(SequenceCost, FullAttentionCostsFinalLength) {
  const Sequence s = make_seq(40, 1.0, 8);
  EXPECT_EQ(s.cost_tokens(), 48u);
}

TEST(SequenceCost, LowerCacheRatioCostsLess) {
  EXPECT_LT(make_seq(100, 0.25).cost_tokens(),
            make_seq(100, 0.5).cost_tokens());
  EXPECT_LT(make_seq(100, 0.5).cost_tokens(),
            make_seq(100, 1.0).cost_tokens());
}

TEST(SequenceCost, NonEvictingPolicyChargesFullGrowth) {
  // A cache_ratio budget only caps memory when the policy evicts; kFull
  // ignores it and grows to prompt+gen, so it must be charged that.
  Sequence s = make_seq(40, 0.5, 8);
  const auto full = kv::make_policy(kv::PolicyKind::kFull);
  s.policy = full.get();
  EXPECT_EQ(s.cost_tokens(), 48u);
  EXPECT_EQ(s.admission_cost_tokens(), 48u);
}

TEST(SequenceCost, AdmissionChargesPrefillPeak) {
  // Prefill materializes the full prompt per layer before the policy
  // trims, so admission charges max(prompt_len, steady-state).
  EXPECT_EQ(make_seq(40, 0.5).admission_cost_tokens(), 40u);
  // Full attention's steady cost (prompt + gen) already exceeds it.
  EXPECT_EQ(make_seq(40, 1.0, 8).admission_cost_tokens(), 48u);
}

TEST(BatchScheduler, AdmitsUpToBatchSize) {
  BatchScheduler sched({.max_batch_size = 2, .max_concurrent_tokens = 0});
  std::vector<Sequence> seqs;
  for (int i = 0; i < 3; ++i) seqs.push_back(make_seq(16, 0.5));
  for (auto& s : seqs) sched.submit(&s);
  const auto admitted = sched.admit(0);
  EXPECT_EQ(admitted.size(), 2u);
  EXPECT_EQ(sched.active_count(), 2u);
  EXPECT_EQ(sched.waiting_count(), 1u);
  // Releasing one frees a slot for the third.
  sched.release(admitted[0]);
  EXPECT_EQ(sched.admit(0).size(), 1u);
}

TEST(BatchScheduler, TokenBudgetChargesPrefillPeakThenSettles) {
  // Each sequence settles to k+1 = 9 tokens but transiently needs its full
  // 16-token prompt resident during prefill; the budget must cover the
  // charged (not just steady-state) total at every admission.
  BatchScheduler sched({.max_batch_size = 0, .max_concurrent_tokens = 25});
  std::vector<Sequence> seqs;
  for (int i = 0; i < 3; ++i) seqs.push_back(make_seq(16, 0.5));
  for (auto& s : seqs) sched.submit(&s);

  // Two un-settled prefill charges (16 + 16) exceed 25: one at a time.
  auto admitted = sched.admit(0);
  ASSERT_EQ(admitted.size(), 1u);
  EXPECT_EQ(sched.tokens_in_use(), 16u);
  sched.settle(admitted[0]);
  EXPECT_EQ(sched.tokens_in_use(), 9u);

  // 9 settled + 16 prefilling = 25 fits exactly.
  admitted = sched.admit(0);
  ASSERT_EQ(admitted.size(), 1u);
  EXPECT_EQ(sched.tokens_in_use(), 25u);
  sched.settle(admitted[0]);
  EXPECT_EQ(sched.tokens_in_use(), 18u);

  // 18 settled + 16 > 25: the third waits for a release.
  EXPECT_TRUE(sched.admit(0).empty());
  sched.release(sched.active()[0]);
  EXPECT_EQ(sched.tokens_in_use(), 9u);
  EXPECT_EQ(sched.admit(0).size(), 1u);
}

TEST(BatchScheduler, ReducedCacheRatioAdmitsMoreSequences) {
  // The Table 1 mechanism: at half the cache ratio, roughly twice the
  // sequences fit the same token budget.
  const std::size_t budget_tokens = 200;
  const auto admitted_at = [&](double ratio) {
    BatchScheduler sched(
        {.max_batch_size = 0, .max_concurrent_tokens = budget_tokens});
    std::vector<Sequence> seqs;
    seqs.reserve(16);
    for (int i = 0; i < 16; ++i) seqs.push_back(make_seq(64, ratio));
    for (auto& s : seqs) sched.submit(&s);
    // Drive to steady state: admit, settle (prefill completes), repeat
    // until the budget blocks further admission.
    while (true) {
      const auto admitted = sched.admit(0);
      if (admitted.empty()) break;
      for (Sequence* s : admitted) sched.settle(s);
    }
    return sched.active_count();
  };
  const std::size_t at_full = admitted_at(1.0);
  const std::size_t at_half = admitted_at(0.5);
  const std::size_t at_quarter = admitted_at(0.25);
  EXPECT_LT(at_full, at_half);
  EXPECT_LT(at_half, at_quarter);
}

TEST(BatchScheduler, ArrivalStepGatesAdmission) {
  BatchScheduler sched({.max_batch_size = 0, .max_concurrent_tokens = 0});
  Sequence early = make_seq(8, 1.0, 4, /*arrival=*/0);
  Sequence late = make_seq(8, 1.0, 4, /*arrival=*/5);
  sched.submit(&early);
  sched.submit(&late);
  EXPECT_EQ(sched.admit(0).size(), 1u);
  EXPECT_EQ(sched.admit(4).size(), 0u);
  ASSERT_TRUE(sched.next_arrival().has_value());
  EXPECT_EQ(*sched.next_arrival(), 5u);
  EXPECT_EQ(sched.admit(5).size(), 1u);
  EXPECT_FALSE(sched.next_arrival().has_value());
}

TEST(BatchScheduler, StrictFifoHeadOfLineBlocks) {
  // A big head-of-queue request blocks later small ones (no starvation of
  // large requests), even though the small one would fit.
  BatchScheduler sched({.max_batch_size = 0, .max_concurrent_tokens = 60});
  Sequence resident = make_seq(40, 0.5);  // admission charge 40
  Sequence big = make_seq(60, 0.5);       // charge 60 > remaining 20
  Sequence small = make_seq(8, 0.5);      // charge 8, would fit
  sched.submit(&resident);
  ASSERT_EQ(sched.admit(0).size(), 1u);
  sched.submit(&big);
  sched.submit(&small);
  EXPECT_TRUE(sched.admit(0).empty());
  // Once the resident leaves, the big head fits the freed budget, and only
  // then the small one.
  sched.release(&resident);
  auto admitted = sched.admit(0);
  ASSERT_EQ(admitted.size(), 1u);
  EXPECT_EQ(admitted[0], &big);
}

TEST(BatchScheduler, OversizedSequenceRunsSolo) {
  BatchScheduler sched({.max_batch_size = 0, .max_concurrent_tokens = 10});
  Sequence huge = make_seq(100, 1.0, 16);  // cost 116 >> 10
  Sequence other = make_seq(8, 0.5);
  sched.submit(&huge);
  sched.submit(&other);
  const auto admitted = sched.admit(0);
  ASSERT_EQ(admitted.size(), 1u);
  EXPECT_EQ(admitted[0], &huge);
  // Nothing else joins while the oversized sequence occupies the engine.
  EXPECT_TRUE(sched.admit(0).empty());
  sched.release(&huge);
  EXPECT_EQ(sched.admit(0).size(), 1u);
}

TEST(BatchScheduler, ReleaseOrSettleOfInactiveThrows) {
  BatchScheduler sched;
  Sequence s = make_seq(8, 0.5);
  EXPECT_THROW(sched.release(&s), std::invalid_argument);
  EXPECT_THROW(sched.settle(&s), std::invalid_argument);
  EXPECT_THROW(sched.submit(nullptr), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Block mode: admission backed by real reservations on a mem::BlockPool.

mem::BlockPoolConfig block_pool_config(std::size_t shards,
                                       std::size_t blocks_per_shard,
                                       std::size_t block_tokens = 8) {
  mem::BlockPoolConfig cfg;
  cfg.n_shards = shards;
  cfg.blocks_per_shard = blocks_per_shard;
  cfg.block_tokens = block_tokens;
  cfg.n_heads = 2;
  cfg.d_head = 4;
  return cfg;
}

Sequence make_block_seq(std::size_t prompt_len, double cache_ratio,
                        std::size_t n_layers = 2, std::size_t max_new = 8) {
  Sequence s = make_seq(prompt_len, cache_ratio, max_new);
  s.n_layers = n_layers;
  return s;
}

TEST(SequenceCost, BlockDemandRoundsPerLayer) {
  // k = 20 -> steady 21 tokens; block_tokens 8 -> 3 blocks per layer.
  const Sequence s = make_block_seq(40, 0.5, /*n_layers=*/2);
  EXPECT_EQ(s.cost_blocks(8), 6u);
  // Admission peak is the 40-token prompt: 5 blocks per layer.
  EXPECT_EQ(s.admission_cost_blocks(8), 10u);
}

TEST(BatchScheduler, BlockModeReservesAndSettlesRealBlocks) {
  mem::BlockPool pool(block_pool_config(1, 12));
  SchedulerConfig cfg;
  cfg.max_batch_size = 0;
  cfg.pool = &pool;
  BatchScheduler sched(cfg);

  Sequence s = make_block_seq(40, 0.5);  // admit 10 blocks, steady 6
  sched.submit(&s);
  ASSERT_EQ(sched.admit(0).size(), 1u);
  EXPECT_EQ(s.shard, 0u);
  EXPECT_EQ(s.reserved_blocks, 10u);
  EXPECT_EQ(sched.blocks_in_use(), 10u);
  EXPECT_EQ(pool.shard_stats(0).reserved_blocks, 10u);

  sched.settle(&s);
  EXPECT_EQ(s.reserved_blocks, 6u);
  EXPECT_EQ(pool.shard_stats(0).reserved_blocks, 6u);

  sched.release(&s);
  EXPECT_EQ(sched.blocks_in_use(), 0u);
  EXPECT_EQ(pool.shard_stats(0).reserved_blocks, 0u);
  EXPECT_EQ(s.shard, Sequence::kNoShard);
}

TEST(BatchScheduler, BlockModeChargesFragmentationTokenModeHides) {
  // Two sequences of steady cost 21 tokens = 3 blocks of 8 per layer x 2
  // layers = 6 blocks each after settle, but 10 at admission. A pool of
  // 12 blocks fits them only sequentially: the second must wait for the
  // first's settle, and a third can never join while both are resident —
  // even though a 48-token *token* budget would have admitted 2 at once.
  mem::BlockPool pool(block_pool_config(1, 12));
  SchedulerConfig cfg;
  cfg.max_batch_size = 0;
  cfg.pool = &pool;
  BatchScheduler sched(cfg);

  Sequence a = make_block_seq(40, 0.5);
  Sequence b = make_block_seq(40, 0.5);
  sched.submit(&a);
  sched.submit(&b);
  ASSERT_EQ(sched.admit(0).size(), 1u);  // only a fits its prefill peak
  sched.settle(&a);                      // 6 reserved; 6 free
  ASSERT_EQ(sched.admit(0).size(), 0u);  // b's peak (10) still too big
  sched.release(&a);
  ASSERT_EQ(sched.admit(0).size(), 1u);
}

TEST(BatchScheduler, LeastLoadedPlacementSpreadsAcrossShards) {
  mem::BlockPool pool(block_pool_config(2, 16));
  SchedulerConfig cfg;
  cfg.max_batch_size = 0;
  cfg.pool = &pool;
  BatchScheduler sched(cfg);

  Sequence a = make_block_seq(40, 0.5);
  Sequence b = make_block_seq(40, 0.5);
  sched.submit(&a);
  sched.submit(&b);
  ASSERT_EQ(sched.admit(0).size(), 2u);
  EXPECT_NE(a.shard, b.shard);
}

TEST(BatchScheduler, RoundRobinPlacementCyclesShards) {
  mem::BlockPool pool(block_pool_config(3, 32));
  SchedulerConfig cfg;
  cfg.max_batch_size = 0;
  cfg.pool = &pool;
  cfg.placement = ShardPlacement::kRoundRobin;
  BatchScheduler sched(cfg);

  std::vector<Sequence> seqs;
  for (std::size_t i = 0; i < 3; ++i) {
    seqs.push_back(make_block_seq(16, 0.5));
  }
  for (auto& s : seqs) sched.submit(&s);
  ASSERT_EQ(sched.admit(0).size(), 3u);
  EXPECT_EQ(seqs[0].shard, 0u);
  EXPECT_EQ(seqs[1].shard, 1u);
  EXPECT_EQ(seqs[2].shard, 2u);
}

TEST(BatchScheduler, BlockModeOversizedDemandThrowsInsteadOfDeadlocking) {
  mem::BlockPool pool(block_pool_config(1, 4));
  SchedulerConfig cfg;
  cfg.pool = &pool;
  BatchScheduler sched(cfg);
  Sequence huge = make_block_seq(100, 1.0);  // far beyond 4 blocks
  sched.submit(&huge);
  EXPECT_THROW(sched.admit(0), std::invalid_argument);
}

TEST(BatchScheduler, BlockModeRequiresLayerCount) {
  mem::BlockPool pool(block_pool_config(1, 8));
  SchedulerConfig cfg;
  cfg.pool = &pool;
  BatchScheduler sched(cfg);
  Sequence s = make_seq(8, 0.5);  // n_layers left 0
  EXPECT_THROW(sched.submit(&s), std::invalid_argument);
}

}  // namespace
}  // namespace kf::serve
