#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/numerics.h"
#include "kvcache/policies/full.h"
#include "kvcache/policies/h2o.h"
#include "kvcache/policies/key_attention.h"
#include "kvcache/policies/keyformer.h"
#include "kvcache/policies/random_evict.h"
#include "kvcache/policies/streaming_llm.h"
#include "kvcache/policies/window.h"
#include "kvcache/policy.h"
#include "kvcache/policy_factory.h"

namespace kf::kv {
namespace {

/// Test fixture state: a cache of `n` tokens plus one decode-style
/// attention snapshot (one query row per head) with configurable "hot"
/// positions that receive high logits.
struct Scenario {
  static constexpr std::size_t kHeads = 2;
  static constexpr std::size_t kDHead = 2;

  ContiguousKvCache cache{kHeads, kDHead};
  std::vector<float> logits;
  std::vector<float> probs;

  explicit Scenario(std::size_t n, std::vector<std::size_t> hot = {}) {
    std::vector<float> row(kHeads * kDHead, 0.0F);
    for (std::size_t i = 0; i < n; ++i) {
      row[0] = static_cast<float>(i);
      cache.append(row, row, i);
    }
    logits.assign(kHeads * n, 0.0F);
    probs.assign(kHeads * n, 0.0F);
    for (std::size_t h = 0; h < kHeads; ++h) {
      for (const std::size_t p : hot) {
        logits[h * n + p] = 4.0F;
      }
      softmax({logits.data() + h * n, n}, {probs.data() + h * n, n});
    }
  }

  PolicyContext ctx(std::size_t decode_step = 1,
                    std::size_t total_steps = 8) {
    PolicyContext c;
    c.layer = 0;
    c.n_heads = kHeads;
    c.n_queries = 1;
    c.key_len = cache.size();
    c.logits = logits;
    c.probs = probs;
    c.is_prompt = false;
    c.decode_step = decode_step;
    c.total_steps = total_steps;
    c.cache = &cache;
    return c;
  }
};

SequenceInfo seq_info(std::size_t prompt_len, std::size_t steps = 8) {
  SequenceInfo s;
  s.prompt_len = prompt_len;
  s.total_steps = steps;
  s.n_layers = 1;
  s.n_heads = Scenario::kHeads;
  return s;
}

// ---------------------------------------------------------------- budgets

TEST(MakeBudget, FullWhenRatioOutOfRange) {
  EXPECT_EQ(make_budget(100, 1.0).max_tokens, 0u);
  EXPECT_EQ(make_budget(100, 0.0).max_tokens, 0u);
  EXPECT_EQ(make_budget(100, 1.5).max_tokens, 0u);
}

TEST(MakeBudget, RatioAndRecentWindow) {
  const CacheBudget b = make_budget(100, 0.5, 0.3);
  EXPECT_EQ(b.max_tokens, 50u);
  EXPECT_EQ(b.recent_window, 15u);
}

TEST(MakeBudget, FlooredAtFour) {
  const CacheBudget b = make_budget(10, 0.1);
  EXPECT_EQ(b.max_tokens, 4u);
  EXPECT_GE(b.recent_window, 1u);
  EXPECT_LT(b.recent_window, b.max_tokens);
}

TEST(MakeBudget, NeverExceedsPrompt) {
  const CacheBudget b = make_budget(3, 0.9);
  EXPECT_LE(b.max_tokens, 3u);
}

// ------------------------------------------------------- selection helper

TEST(KeepTopK, SelectsHighestWithRecentSuffix) {
  const std::vector<double> scores{5.0, 1.0, 3.0, 2.0};
  const auto keep = keep_topk_plus_recent(scores, 6, 4, 2);
  // Top-2 of prefix {0,2} plus suffix {4,5}.
  EXPECT_EQ(keep, (std::vector<std::size_t>{0, 2, 4, 5}));
}

TEST(KeepTopK, TieBreakPrefersLowerIndex) {
  const std::vector<double> scores{1.0, 1.0, 1.0};
  const auto keep = keep_topk_plus_recent(scores, 3, 3, 2);
  EXPECT_EQ(keep, (std::vector<std::size_t>{0, 1}));
}

TEST(KeepTopK, ClampsKeepCount) {
  const std::vector<double> scores{1.0, 2.0};
  const auto keep = keep_topk_plus_recent(scores, 2, 2, 10);
  EXPECT_EQ(keep.size(), 2u);
}

TEST(KeepTopK, OutputSortedAscending) {
  const std::vector<double> scores{0.1, 9.0, 0.2, 8.0, 0.3};
  const auto keep = keep_topk_plus_recent(scores, 7, 5, 3);
  EXPECT_TRUE(std::is_sorted(keep.begin(), keep.end()));
}

// ----------------------------------------------------------------- full

TEST(FullPolicy, NeverEvicts) {
  Scenario s(32);
  FullAttentionPolicy policy;
  policy.set_budget(CacheBudget{});  // unlimited
  policy.begin_sequence(seq_info(32));
  policy.observe(s.ctx());
  EXPECT_EQ(s.cache.size(), 32u);
}

// --------------------------------------------------------------- window

TEST(WindowPolicy, KeepsMostRecentTokens) {
  Scenario s(20);
  WindowPolicy policy;
  policy.set_budget(make_budget(20, 0.5));
  policy.begin_sequence(seq_info(20));
  policy.observe(s.ctx());
  ASSERT_EQ(s.cache.size(), 10u);
  EXPECT_EQ(s.cache.original_position(0), 10u);
  EXPECT_EQ(s.cache.original_position(9), 19u);
}

TEST(WindowPolicy, NoOpUnderBudget) {
  Scenario s(4);
  WindowPolicy policy;
  policy.set_budget(make_budget(20, 0.5));
  policy.observe(s.ctx());
  EXPECT_EQ(s.cache.size(), 4u);
}

TEST(WindowPolicy, DilatedPatternStride2) {
  Scenario s(10);
  WindowPolicy policy(/*dilation=*/1);
  CacheBudget b;
  b.max_tokens = 4;
  b.recent_window = 1;
  policy.set_budget(b);
  policy.observe(s.ctx());
  ASSERT_EQ(s.cache.size(), 4u);
  // Walk back from 9 with stride 2: 9, 7, 5, 3.
  EXPECT_EQ(s.cache.original_position(0), 3u);
  EXPECT_EQ(s.cache.original_position(1), 5u);
  EXPECT_EQ(s.cache.original_position(2), 7u);
  EXPECT_EQ(s.cache.original_position(3), 9u);
}

TEST(WindowPolicy, DilatedFillsWhenWalkRunsOut) {
  Scenario s(5);
  WindowPolicy policy(/*dilation=*/3);
  CacheBudget b;
  b.max_tokens = 4;
  b.recent_window = 1;
  policy.set_budget(b);
  policy.observe(s.ctx());
  EXPECT_EQ(s.cache.size(), 4u);
}

// ---------------------------------------------------------- streaming llm

TEST(StreamingLlm, KeepsSinksAndRecent) {
  Scenario s(30);
  StreamingLlmPolicy policy(4);
  CacheBudget b;
  b.max_tokens = 10;
  b.recent_window = 6;
  policy.set_budget(b);
  policy.observe(s.ctx());
  ASSERT_EQ(s.cache.size(), 10u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(s.cache.original_position(i), i);
  }
  EXPECT_EQ(s.cache.original_position(9), 29u);
}

TEST(StreamingLlm, SinksSurviveRepeatedEviction) {
  Scenario s(30);
  StreamingLlmPolicy policy(4);
  CacheBudget b;
  b.max_tokens = 8;
  policy.set_budget(b);
  policy.observe(s.ctx());
  // Append more tokens and evict again.
  std::vector<float> row(Scenario::kHeads * Scenario::kDHead, 0.0F);
  for (std::size_t p = 30; p < 35; ++p) s.cache.append(row, row, p);
  Scenario fresh(1);  // reuse ctx shape via a fresh scenario is awkward;
  PolicyContext c = s.ctx();
  c.key_len = s.cache.size();
  // logits/probs spans are stale but StreamingLLM ignores them.
  policy.observe(c);
  ASSERT_EQ(s.cache.size(), 8u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(s.cache.original_position(i), i);
  }
  EXPECT_EQ(s.cache.original_position(7), 34u);
}

// ----------------------------------------------------------------- random

TEST(RandomEvict, RespectsBudgetAndRecentWindow) {
  Scenario s(40);
  RandomEvictPolicy policy(7);
  policy.set_budget(make_budget(40, 0.5, 0.25));
  policy.begin_sequence(seq_info(40));
  policy.observe(s.ctx());
  ASSERT_EQ(s.cache.size(), 20u);
  // Last 5 (recent window) must be the trailing original positions.
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(s.cache.original_position(19 - i), 39 - i);
  }
}

TEST(RandomEvict, DeterministicPerSeed) {
  Scenario a(40), b(40), c(40);
  RandomEvictPolicy p1(7), p2(7), p3(8);
  for (auto* p : {&p1, &p2, &p3}) {
    p->set_budget(make_budget(40, 0.5));
    p->begin_sequence(seq_info(40));
  }
  p1.observe(a.ctx());
  p2.observe(b.ctx());
  p3.observe(c.ctx());
  std::vector<std::size_t> pa(a.cache.original_positions().begin(),
                              a.cache.original_positions().end());
  std::vector<std::size_t> pb(b.cache.original_positions().begin(),
                              b.cache.original_positions().end());
  std::vector<std::size_t> pc(c.cache.original_positions().begin(),
                              c.cache.original_positions().end());
  EXPECT_EQ(pa, pb);
  EXPECT_NE(pa, pc);
}

// -------------------------------------------------------------------- h2o

TEST(H2O, AccumulatesAttentionProbs) {
  Scenario s(8, /*hot=*/{2});
  H2OPolicy policy;
  policy.set_budget(CacheBudget{});  // no eviction yet
  policy.observe(s.ctx());
  EXPECT_GT(s.cache.total_score(2), s.cache.total_score(3));
}

TEST(H2O, KeepsHeavyHitterPlusRecent) {
  Scenario s(20, /*hot=*/{3});
  H2OPolicy policy;
  CacheBudget b;
  b.max_tokens = 6;
  b.recent_window = 4;
  policy.set_budget(b);
  policy.observe(s.ctx());
  ASSERT_EQ(s.cache.size(), 6u);
  // The heavy hitter survives outside the recent window.
  const auto pos = s.cache.original_positions();
  EXPECT_NE(std::find(pos.begin(), pos.end(), 3u), pos.end());
  // Recent 4 kept.
  EXPECT_EQ(s.cache.original_position(5), 19u);
  EXPECT_EQ(s.cache.original_position(2), 16u);
}

TEST(H2O, RejectsBadDamping) {
  EXPECT_THROW(H2OPolicy(0.0), std::invalid_argument);
  EXPECT_THROW(H2OPolicy(1.2), std::invalid_argument);
}

TEST(H2O, DampingDecaysOldScores) {
  Scenario s(8, {1});
  H2OPolicy damped(0.5);
  damped.set_budget(CacheBudget{});
  damped.observe(s.ctx());
  const double first = s.cache.total_score(1);
  // Second observation: old score halves before the new increment lands.
  damped.observe(s.ctx());
  const double second = s.cache.total_score(1);
  EXPECT_LT(second, 2.0 * first);
  EXPECT_NEAR(second, 1.5 * first, 1e-9);
}

// ----------------------------------------------------------- key attention

TEST(KeyAttention, PureTopKNoRecentGuarantee) {
  Scenario s(20, /*hot=*/{0, 1, 2, 3, 4, 5});
  KeyAttentionPolicy policy;
  CacheBudget b;
  b.max_tokens = 6;
  b.recent_window = 3;  // ignored by key attention
  policy.set_budget(b);
  policy.observe(s.ctx());
  ASSERT_EQ(s.cache.size(), 6u);
  // All kept tokens are the hot ones; the most recent token is gone.
  EXPECT_EQ(s.cache.original_position(5), 5u);
}

// -------------------------------------------------------------- keyformer

KeyformerConfig quiet_keyformer() {
  KeyformerConfig cfg;
  cfg.score.noise_scale = 0.0;
  cfg.score.temperature.dynamic = false;
  return cfg;
}

TEST(Keyformer, BudgetRespectedAndRecentKept) {
  Scenario s(24, {5});
  KeyformerPolicy policy;
  CacheBudget b;
  b.max_tokens = 8;
  b.recent_window = 3;
  policy.set_budget(b);
  policy.begin_sequence(seq_info(24));
  policy.observe(s.ctx());
  ASSERT_EQ(s.cache.size(), 8u);
  EXPECT_EQ(s.cache.original_position(7), 23u);
  EXPECT_EQ(s.cache.original_position(5), 21u);
}

TEST(Keyformer, NoNoiseStaticTauMatchesH2OKeepSet) {
  // With zero noise and tau == 1 the Keyformer score reduces exactly to
  // accumulated attention, so the keep set must match H2O's.
  Scenario a(30, {2, 7, 11});
  Scenario b(30, {2, 7, 11});
  KeyformerPolicy kf(quiet_keyformer());
  H2OPolicy h2o;
  CacheBudget budget;
  budget.max_tokens = 10;
  budget.recent_window = 3;
  kf.set_budget(budget);
  h2o.set_budget(budget);
  kf.begin_sequence(seq_info(30));
  h2o.begin_sequence(seq_info(30));
  kf.observe(a.ctx());
  h2o.observe(b.ctx());
  const auto pa = a.cache.original_positions();
  const auto pb = b.cache.original_positions();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_EQ(pa[i], pb[i]);
}

TEST(Keyformer, HotTokenSurvives) {
  Scenario s(30, {4});
  KeyformerPolicy policy(quiet_keyformer());
  CacheBudget b;
  b.max_tokens = 8;
  b.recent_window = 4;
  policy.set_budget(b);
  policy.begin_sequence(seq_info(30));
  policy.observe(s.ctx());
  const auto pos = s.cache.original_positions();
  EXPECT_NE(std::find(pos.begin(), pos.end(), 4u), pos.end());
}

TEST(Keyformer, SharedScopeAccumulatesByPosition) {
  Scenario s(16, {3});
  KeyformerConfig cfg = quiet_keyformer();
  cfg.scope = ScoreScope::kShared;
  KeyformerPolicy policy(cfg);
  policy.set_budget(CacheBudget{});
  policy.begin_sequence(seq_info(16, 8));
  policy.observe(s.ctx());
  const auto shared = policy.shared_scores();
  ASSERT_GE(shared.size(), 16u);
  EXPECT_GT(shared[3], shared[5]);
  // Per-layer cache scores stay untouched in shared mode.
  EXPECT_DOUBLE_EQ(s.cache.total_score(3), 0.0);
}

TEST(Keyformer, SharedScopeSurvivesCompaction) {
  // Shared scores are indexed by original position, so compaction must not
  // disturb them.
  Scenario s(16, {3});
  KeyformerConfig cfg = quiet_keyformer();
  cfg.scope = ScoreScope::kShared;
  KeyformerPolicy policy(cfg);
  CacheBudget b;
  b.max_tokens = 6;
  b.recent_window = 2;
  policy.set_budget(b);
  policy.begin_sequence(seq_info(16, 8));
  policy.observe(s.ctx());
  const auto pos = s.cache.original_positions();
  EXPECT_NE(std::find(pos.begin(), pos.end(), 3u), pos.end());
}

TEST(Keyformer, NoiseChangesSelectionSomewhere) {
  // With flat logits, selection is driven by the frozen noise; two seeds
  // should eventually disagree.
  Scenario a(40), b(40);
  KeyformerConfig c1;
  c1.score.seed = 1;
  c1.score.noise_scale = 1.0;
  KeyformerConfig c2;
  c2.score.seed = 2;
  c2.score.noise_scale = 1.0;
  KeyformerPolicy p1(c1), p2(c2);
  CacheBudget budget;
  budget.max_tokens = 10;
  budget.recent_window = 3;
  p1.set_budget(budget);
  p2.set_budget(budget);
  p1.begin_sequence(seq_info(40));
  p2.begin_sequence(seq_info(40));
  p1.observe(a.ctx());
  p2.observe(b.ctx());
  const auto pa = a.cache.original_positions();
  const auto pb = b.cache.original_positions();
  bool differs = pa.size() != pb.size();
  for (std::size_t i = 0; !differs && i < pa.size(); ++i) {
    differs = pa[i] != pb[i];
  }
  EXPECT_TRUE(differs);
}

// ---------------------------------------------------------------- factory

TEST(PolicyFactory, RoundTripNames) {
  for (const auto kind :
       {PolicyKind::kFull, PolicyKind::kWindow, PolicyKind::kDilatedWindow,
        PolicyKind::kRandom, PolicyKind::kKeyAttention, PolicyKind::kH2O,
        PolicyKind::kStreamingLLM, PolicyKind::kKeyformer}) {
    EXPECT_EQ(parse_policy_kind(to_string(kind)), kind);
  }
}

TEST(PolicyFactory, UnknownNameThrows) {
  EXPECT_THROW(parse_policy_kind("bogus"), std::invalid_argument);
}

TEST(PolicyFactory, ProducesCorrectPolicyNames) {
  EXPECT_EQ(make_policy(PolicyKind::kFull)->name(), "full");
  EXPECT_EQ(make_policy(PolicyKind::kWindow)->name(), "window");
  EXPECT_EQ(make_policy(PolicyKind::kDilatedWindow)->name(),
            "dilated_window");
  EXPECT_EQ(make_policy(PolicyKind::kKeyformer)->name(), "keyformer");
  EXPECT_EQ(make_policy(PolicyKind::kStreamingLLM)->name(),
            "streaming_llm");
}

// -------------------------------------------- parameterized budget sweep

class BudgetInvariantTest
    : public ::testing::TestWithParam<std::tuple<PolicyKind, double>> {};

TEST_P(BudgetInvariantTest, CacheEndsExactlyAtBudget) {
  const auto [kind, ratio] = GetParam();
  PolicyConfig config;
  config.kind = kind;
  auto policy = make_policy(config);
  const std::size_t n = 64;
  Scenario s(n, {5, 9, 13});
  const CacheBudget b = make_budget(n, ratio);
  policy->set_budget(b);
  policy->begin_sequence(seq_info(n));
  policy->observe(s.ctx());
  EXPECT_EQ(s.cache.size(), b.max_tokens);
  // Original-position order preserved.
  const auto pos = s.cache.original_positions();
  EXPECT_TRUE(std::is_sorted(pos.begin(), pos.end()));
}

INSTANTIATE_TEST_SUITE_P(
    AllPoliciesAllBudgets, BudgetInvariantTest,
    ::testing::Combine(
        ::testing::Values(PolicyKind::kWindow, PolicyKind::kDilatedWindow,
                          PolicyKind::kRandom, PolicyKind::kKeyAttention,
                          PolicyKind::kH2O, PolicyKind::kStreamingLLM,
                          PolicyKind::kKeyformer),
        ::testing::Values(0.2, 0.3, 0.5, 0.7, 0.9)),
    [](const auto& info) {
      return to_string(std::get<0>(info.param)) + "_r" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

}  // namespace
}  // namespace kf::kv
