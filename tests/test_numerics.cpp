#include "core/numerics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace kf {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

TEST(Softmax, SumsToOne) {
  std::vector<float> x{1.0F, 2.0F, 3.0F};
  std::vector<float> out(3);
  softmax(x, out);
  EXPECT_NEAR(out[0] + out[1] + out[2], 1.0F, 1e-6F);
  EXPECT_GT(out[2], out[1]);
  EXPECT_GT(out[1], out[0]);
}

TEST(Softmax, StableUnderLargeValues) {
  std::vector<float> x{1000.0F, 1001.0F};
  std::vector<float> out(2);
  softmax(x, out);
  EXPECT_NEAR(out[1], 1.0F / (1.0F + std::exp(-1.0F)), 1e-5F);
  EXPECT_FALSE(std::isnan(out[0]));
}

TEST(Softmax, MaskedEntriesBecomeZero) {
  std::vector<float> x{0.0F, -kInf, 0.0F};
  std::vector<float> out(3);
  softmax(x, out);
  EXPECT_EQ(out[1], 0.0F);
  EXPECT_NEAR(out[0], 0.5F, 1e-6F);
}

TEST(Softmax, AllMaskedRowYieldsZerosNotNaN) {
  // A fully masked row (every logit -inf) has no distribution; the guard
  // must return the all-zero row instead of NaN fan-out via -inf - -inf.
  std::vector<float> x{-kInf, -kInf, -kInf};
  std::vector<float> out(3, 7.0F);
  softmax(x, out);
  for (const float v : out) EXPECT_EQ(v, 0.0F);
}

TEST(SoftmaxTemperature, AllMaskedRowYieldsZerosNotNaN) {
  std::vector<float> x{-kInf, -kInf};
  std::vector<float> out(2, 7.0F);
  softmax_temperature(x, out, 1.7);
  for (const float v : out) EXPECT_EQ(v, 0.0F);
}

TEST(Softmax, ShiftInvariance) {
  std::vector<float> x{0.5F, 1.5F, -0.5F};
  std::vector<float> shifted{10.5F, 11.5F, 9.5F};
  std::vector<float> a(3), b(3);
  softmax(x, a);
  softmax(shifted, b);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(a[i], b[i], 1e-6F);
}

TEST(SoftmaxTemperature, HighTauApproachesUniform) {
  std::vector<float> x{0.0F, 1.0F, 2.0F, 3.0F};
  std::vector<float> out(4);
  softmax_temperature(x, out, 1000.0);
  for (const float v : out) EXPECT_NEAR(v, 0.25F, 1e-3F);
}

TEST(SoftmaxTemperature, LowTauApproachesArgmax) {
  std::vector<float> x{0.0F, 1.0F, 2.0F};
  std::vector<float> out(3);
  softmax_temperature(x, out, 0.05);
  EXPECT_GT(out[2], 0.99F);
}

TEST(SoftmaxTemperature, TauOneEqualsSoftmax) {
  std::vector<float> x{0.3F, -0.7F, 1.9F};
  std::vector<float> a(3), b(3);
  softmax(x, a);
  softmax_temperature(x, b, 1.0);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(a[i], b[i], 1e-6F);
}

TEST(SoftmaxTemperature, EntropyIncreasesWithTau) {
  std::vector<float> x{0.0F, 0.5F, 3.0F, -1.0F};
  std::vector<float> p1(4), p2(4);
  softmax_temperature(x, p1, 1.0);
  softmax_temperature(x, p2, 2.0);
  EXPECT_GT(entropy(p2), entropy(p1));
}

TEST(LogSumExp, MatchesDirectComputation) {
  std::vector<float> x{0.1F, 0.2F, 0.3F};
  double direct = 0.0;
  for (const float v : x) direct += std::exp(static_cast<double>(v));
  EXPECT_NEAR(logsumexp(x), std::log(direct), 1e-6);
}

TEST(LogSoftmax, ExponentiatesToSoftmax) {
  std::vector<float> x{1.0F, -2.0F, 0.5F};
  std::vector<float> ls(3), sm(3);
  log_softmax(x, ls);
  softmax(x, sm);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(std::exp(static_cast<double>(ls[i])), sm[i], 1e-6);
  }
}

TEST(Entropy, UniformIsMaximal) {
  std::vector<float> uniform{0.25F, 0.25F, 0.25F, 0.25F};
  std::vector<float> peaked{0.97F, 0.01F, 0.01F, 0.01F};
  EXPECT_NEAR(entropy(uniform), std::log(4.0), 1e-6);
  EXPECT_LT(entropy(peaked), entropy(uniform));
}

TEST(Entropy, SkipsZeros) {
  std::vector<float> p{0.5F, 0.5F, 0.0F};
  EXPECT_NEAR(entropy(p), std::log(2.0), 1e-6);
}

TEST(KlDivergence, ZeroForIdentical) {
  std::vector<float> p{0.2F, 0.3F, 0.5F};
  EXPECT_NEAR(kl_divergence(p, p), 0.0, 1e-9);
}

TEST(KlDivergence, PositiveForDifferent) {
  std::vector<float> p{0.9F, 0.1F};
  std::vector<float> q{0.1F, 0.9F};
  EXPECT_GT(kl_divergence(p, q), 0.5);
}

TEST(KlDivergence, HandlesZeroQSafely) {
  std::vector<float> p{0.5F, 0.5F};
  std::vector<float> q{1.0F, 0.0F};
  const double kl = kl_divergence(p, q);
  EXPECT_TRUE(std::isfinite(kl));
  EXPECT_GT(kl, 1.0);
}

TEST(MaxValue, Basic) {
  std::vector<float> x{-3.0F, 7.0F, 2.0F};
  EXPECT_EQ(max_value(x), 7.0F);
}

}  // namespace
}  // namespace kf
