#include "data/fewshot.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace kf::data {
namespace {

TEST(Mcq, OptionCountsPerTask) {
  EXPECT_EQ(n_options(McqTaskKind::kCopa), 2u);
  EXPECT_EQ(n_options(McqTaskKind::kPiqa), 2u);
  EXPECT_EQ(n_options(McqTaskKind::kOpenBookQa), 4u);
  EXPECT_EQ(n_options(McqTaskKind::kWinogrande), 2u);
}

TEST(Mcq, Names) {
  EXPECT_EQ(to_string(McqTaskKind::kCopa), "copa");
  EXPECT_EQ(to_string(McqTaskKind::kOpenBookQa), "openbookqa");
}

TEST(Mcq, Deterministic) {
  McqConfig cfg;
  const McqSample a = make_mcq_sample(cfg, 0);
  const McqSample b = make_mcq_sample(cfg, 0);
  EXPECT_EQ(a.prompt, b.prompt);
  EXPECT_EQ(a.options, b.options);
  EXPECT_EQ(a.correct, b.correct);
}

TEST(Mcq, OptionsDistinctAndSalient) {
  McqConfig cfg;
  cfg.kind = McqTaskKind::kOpenBookQa;
  const TokenClasses classes(cfg.vocab_size);
  const McqSample s = make_mcq_sample(cfg, 1);
  ASSERT_EQ(s.options.size(), 4u);
  const std::set<Token> uniq(s.options.begin(), s.options.end());
  EXPECT_EQ(uniq.size(), 4u);
  for (const Token t : s.options) EXPECT_TRUE(classes.is_fact(t));
  EXPECT_LT(s.correct, s.options.size());
}

TEST(Mcq, AnswerPlantedMoreThanWrongOptions) {
  McqConfig cfg;
  const McqSample s = make_mcq_sample(cfg, 2);
  const auto count = [&](Token t) {
    return std::count(s.prompt.begin(), s.prompt.end(), t);
  };
  const Token answer = s.options[s.correct];
  for (std::size_t i = 0; i < s.options.size(); ++i) {
    if (i == s.correct) continue;
    EXPECT_GT(count(answer), count(s.options[i]));
  }
  EXPECT_GE(count(answer), 3);
}

TEST(Mcq, ShotsLengthenPrompt) {
  McqConfig zero;
  McqConfig five;
  five.n_shots = 5;
  const McqSample a = make_mcq_sample(zero, 3);
  const McqSample b = make_mcq_sample(five, 3);
  EXPECT_GT(b.prompt.size(), a.prompt.size() + 100);
}

TEST(Mcq, ShotsEndWithSepAnswerSep) {
  McqConfig cfg;
  cfg.n_shots = 2;
  const McqSample s = make_mcq_sample(cfg, 4);
  // Shot answers are bracketed by <sep> tokens somewhere in the prompt.
  bool found = false;
  for (std::size_t i = 2; i < s.prompt.size() && !found; ++i) {
    found = s.prompt[i] == kSep && s.prompt[i - 2] == kSep &&
            s.prompt[i - 1] >= kFirstContentToken;
  }
  EXPECT_TRUE(found);
}

TEST(Mcq, SetHasVariedAnswers) {
  McqConfig cfg;
  cfg.kind = McqTaskKind::kOpenBookQa;
  const auto set = make_mcq_set(cfg, 24);
  ASSERT_EQ(set.size(), 24u);
  std::set<std::size_t> answers;
  for (const auto& s : set) answers.insert(s.correct);
  EXPECT_GT(answers.size(), 1u);
}

class AllTaskKinds : public ::testing::TestWithParam<McqTaskKind> {};

TEST_P(AllTaskKinds, SamplesAreWellFormed) {
  McqConfig cfg;
  cfg.kind = GetParam();
  cfg.n_shots = 1;
  const auto set = make_mcq_set(cfg, 4);
  for (const auto& s : set) {
    EXPECT_EQ(s.options.size(), n_options(cfg.kind));
    EXPECT_LT(s.correct, s.options.size());
    EXPECT_EQ(s.prompt.front(), kBos);
    for (const Token t : s.prompt) {
      EXPECT_GE(t, 0);
      EXPECT_LT(t, static_cast<Token>(cfg.vocab_size));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Tasks, AllTaskKinds,
                         ::testing::Values(McqTaskKind::kCopa,
                                           McqTaskKind::kPiqa,
                                           McqTaskKind::kOpenBookQa,
                                           McqTaskKind::kWinogrande),
                         [](const auto& info) {
                           return to_string(info.param);
                         });

}  // namespace
}  // namespace kf::data
