#include "model/positional.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/rng.h"

namespace kf::model {
namespace {

TEST(Rope, PositionZeroIsIdentity) {
  std::vector<float> v{1.0F, 2.0F, 3.0F, 4.0F};
  const std::vector<float> orig = v;
  rope_rotate(v, 0, 10000.0);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(v[i], orig[i], 1e-6F);
}

TEST(Rope, PreservesNorm) {
  Rng rng(1);
  std::vector<float> v(32);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  double norm_before = 0.0;
  for (const float x : v) norm_before += static_cast<double>(x) * x;
  rope_rotate(v, 1234, 10000.0);
  double norm_after = 0.0;
  for (const float x : v) norm_after += static_cast<double>(x) * x;
  EXPECT_NEAR(norm_before, norm_after, 1e-3);
}

TEST(Rope, RelativePositionProperty) {
  // <R(p) q, R(p + d) k> depends only on d, not p.
  Rng rng(2);
  std::vector<float> q(16), k(16);
  for (auto& x : q) x = static_cast<float>(rng.normal());
  for (auto& x : k) x = static_cast<float>(rng.normal());

  const auto dot_at = [&](std::size_t p, std::size_t d) {
    std::vector<float> qr = q, kr = k;
    rope_rotate(qr, p, 10000.0);
    rope_rotate(kr, p + d, 10000.0);
    double acc = 0.0;
    for (int i = 0; i < 16; ++i) {
      acc += static_cast<double>(qr[i]) * kr[i];
    }
    return acc;
  };
  EXPECT_NEAR(dot_at(0, 7), dot_at(100, 7), 1e-3);
  EXPECT_NEAR(dot_at(5, 0), dot_at(500, 0), 1e-3);
}

TEST(Rope, SameVectorDotDecaysWithDistance) {
  // Rotating the same vector to distant positions reduces the dot product
  // relative to distance 0 (recency structure for content heads).
  std::vector<float> v(32, 1.0F);
  std::vector<float> a = v, b = v;
  rope_rotate(a, 100, 10000.0);
  rope_rotate(b, 101, 10000.0);
  double near = 0.0;
  for (int i = 0; i < 32; ++i) near += static_cast<double>(a[i]) * b[i];
  std::vector<float> c = v, d = v;
  rope_rotate(c, 100, 10000.0);
  rope_rotate(d, 200, 10000.0);
  double far = 0.0;
  for (int i = 0; i < 32; ++i) far += static_cast<double>(c[i]) * d[i];
  EXPECT_GT(near, far);
}

TEST(Alibi, PowerOfTwoSlopes) {
  EXPECT_NEAR(alibi_slope(0, 8), std::pow(2.0, -1.0), 1e-12);
  EXPECT_NEAR(alibi_slope(7, 8), std::pow(2.0, -8.0), 1e-12);
  EXPECT_NEAR(alibi_slope(3, 4), std::pow(2.0, -8.0), 1e-12);
}

TEST(Alibi, SlopesDecreaseWithHead) {
  for (std::size_t h = 1; h < 8; ++h) {
    EXPECT_LT(alibi_slope(h, 8), alibi_slope(h - 1, 8));
  }
}

TEST(Alibi, NonPowerOfTwoHeadsSupported) {
  for (std::size_t h = 0; h < 6; ++h) {
    const double s = alibi_slope(h, 6);
    EXPECT_GT(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(Alibi, BiasZeroAtDistanceZero) {
  EXPECT_DOUBLE_EQ(alibi_bias(0, 8, 10, 10), 0.0);
}

TEST(Alibi, BiasLinearInDistance) {
  const double b1 = alibi_bias(2, 8, 20, 19);
  const double b5 = alibi_bias(2, 8, 20, 15);
  EXPECT_NEAR(b5, 5.0 * b1, 1e-12);
  EXPECT_LT(b1, 0.0);
}

TEST(Alibi, SteeperHeadsPenalizeDistanceMore) {
  EXPECT_LT(alibi_bias(0, 8, 50, 0), alibi_bias(7, 8, 50, 0));
}

}  // namespace
}  // namespace kf::model
