#include "model/attention.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/rng.h"
#include "model/transformer.h"

namespace kf::model {
namespace {

ModelConfig tiny_config(PositionalKind pos = PositionalKind::kRoPE) {
  ModelConfig cfg;
  cfg.vocab_size = 64;
  cfg.d_model = 16;
  cfg.n_layers = 1;
  cfg.n_heads = 2;
  cfg.d_ff = 32;
  cfg.positional = pos;
  cfg.max_seq_len = 256;
  return cfg;
}

Tensor random_rows(std::size_t n, std::size_t d, std::uint64_t seed) {
  Tensor x({n, d});
  Rng rng(seed);
  for (float& v : x.span()) {
    v = static_cast<float>(rng.uniform() * 2.0 - 1.0);
  }
  return x;
}

/// A cache pre-filled with `len` tokens through the general path (the same
/// appends a prefill performs).
kv::ContiguousKvCache filled_cache(const ModelConfig& cfg, const LayerWeights& w,
                         std::size_t len, std::uint64_t seed) {
  kv::ContiguousKvCache cache(cfg.n_heads, cfg.d_head());
  Tensor x = random_rows(len, cfg.d_model, seed);
  std::vector<std::size_t> positions(len);
  for (std::size_t i = 0; i < len; ++i) positions[i] = i;
  attention_forward_general(cfg, w, x, positions, cache);
  return cache;
}

class BatchDecodeParity : public ::testing::TestWithParam<PositionalKind> {};

TEST_P(BatchDecodeParity, MatchesSingleSequenceDecodePerSlot) {
  const ModelConfig cfg = tiny_config(GetParam());
  const Transformer m(cfg);
  const LayerWeights& w = m.weights().layers[0];

  constexpr std::size_t kBatch = 4;
  constexpr std::size_t kPrefill = 10;

  // Each slot is an independent sequence: its own cache history (different
  // seeds) and its own new-token row.
  std::vector<kv::ContiguousKvCache> single_caches;
  std::vector<kv::ContiguousKvCache> batch_caches;
  for (std::size_t b = 0; b < kBatch; ++b) {
    single_caches.push_back(filled_cache(cfg, w, kPrefill, 100 + b));
    batch_caches.push_back(single_caches.back());  // identical clone
  }
  const Tensor xq = random_rows(kBatch, cfg.d_model, 7);

  // Reference: B separate single-query decode calls.
  std::vector<AttentionResult> expected;
  for (std::size_t b = 0; b < kBatch; ++b) {
    Tensor row({1, cfg.d_model});
    for (std::size_t j = 0; j < cfg.d_model; ++j) row.row(0)[j] = xq.row(b)[j];
    expected.push_back(
        attention_decode(cfg, w, row, kPrefill, single_caches[b]));
  }

  // Batched: one call, one GEMM per projection.
  std::vector<DecodeBatchSlot> slots(kBatch);
  for (std::size_t b = 0; b < kBatch; ++b) {
    slots[b] = {kPrefill, &batch_caches[b]};
  }
  const auto results = attention_decode_batch(cfg, w, xq, slots);

  ASSERT_EQ(results.size(), kBatch);
  for (std::size_t b = 0; b < kBatch; ++b) {
    ASSERT_EQ(results[b].key_len, expected[b].key_len) << "slot " << b;
    for (std::size_t i = 0; i < expected[b].logits.size(); ++i) {
      EXPECT_NEAR(results[b].logits.span()[i], expected[b].logits.span()[i],
                  1e-5F)
          << "slot " << b << " logit " << i;
    }
    for (std::size_t i = 0; i < expected[b].probs.size(); ++i) {
      EXPECT_NEAR(results[b].probs.span()[i], expected[b].probs.span()[i],
                  1e-5F)
          << "slot " << b << " prob " << i;
    }
    for (std::size_t i = 0; i < expected[b].context.size(); ++i) {
      EXPECT_NEAR(results[b].context.span()[i],
                  expected[b].context.span()[i], 1e-5F)
          << "slot " << b << " ctx " << i;
    }
    // The caches must have evolved identically (same appended row).
    ASSERT_EQ(batch_caches[b].size(), single_caches[b].size());
    const std::size_t last = batch_caches[b].size() - 1;
    const auto kb = batch_caches[b].key_row(last);
    const auto ks = single_caches[b].key_row(last);
    for (std::size_t j = 0; j < kb.size(); ++j) {
      EXPECT_NEAR(kb[j], ks[j], 1e-6F);
    }
  }
}

TEST_P(BatchDecodeParity, SlotResultIndependentOfBatchComposition) {
  // Sequence S decoded in a batch of 2 and in a batch of 5 (different
  // companions) must produce identical results: sequences never read each
  // other's caches, and per-row GEMM accumulation is row-independent.
  const ModelConfig cfg = tiny_config(GetParam());
  const Transformer m(cfg);
  const LayerWeights& w = m.weights().layers[0];

  const Tensor s_query = random_rows(1, cfg.d_model, 3);
  const auto run_in_batch = [&](std::size_t batch, std::size_t s_slot) {
    std::vector<kv::ContiguousKvCache> caches;
    for (std::size_t b = 0; b < batch; ++b) {
      // Slot s_slot is sequence S (seed 42); companions vary with batch.
      caches.push_back(
          filled_cache(cfg, w, b == s_slot ? 12 : 6 + batch + b,
                       b == s_slot ? 42 : 1000 * batch + b));
    }
    Tensor xq = random_rows(batch, cfg.d_model, 77 + batch);
    for (std::size_t j = 0; j < cfg.d_model; ++j) {
      xq.row(s_slot)[j] = s_query.row(0)[j];
    }
    std::vector<DecodeBatchSlot> slots(batch);
    for (std::size_t b = 0; b < batch; ++b) {
      slots[b] = {b == s_slot ? std::size_t{12} : 6 + batch + b, &caches[b]};
    }
    auto results = attention_decode_batch(cfg, w, xq, slots);
    return std::move(results[s_slot]);
  };

  const AttentionResult a = run_in_batch(2, 0);
  const AttentionResult b = run_in_batch(5, 3);
  ASSERT_EQ(a.key_len, b.key_len);
  for (std::size_t i = 0; i < a.context.size(); ++i) {
    EXPECT_EQ(a.context.span()[i], b.context.span()[i]) << "ctx " << i;
  }
  for (std::size_t i = 0; i < a.logits.size(); ++i) {
    EXPECT_EQ(a.logits.span()[i], b.logits.span()[i]) << "logit " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, BatchDecodeParity,
                         ::testing::Values(PositionalKind::kRoPE,
                                           PositionalKind::kALiBi,
                                           PositionalKind::kLearned),
                         [](const auto& info) {
                           return to_string(info.param);
                         });

TEST(BatchDecode, BatchOfOneFollowsSingleSequenceDispatch) {
  // With the fast path disabled, a batch of one must still honor the
  // general-path dispatch (bit-for-bit the single-sequence decode).
  ModelConfig cfg = tiny_config();
  cfg.decode_fast_path = false;
  const Transformer m(cfg);
  const LayerWeights& w = m.weights().layers[0];

  kv::ContiguousKvCache a = filled_cache(cfg, w, 8, 5);
  kv::ContiguousKvCache b = a;
  const Tensor xq = random_rows(1, cfg.d_model, 11);

  const std::size_t pos[1] = {8};
  const AttentionResult general =
      attention_forward(cfg, w, xq, {pos, 1}, a);
  const DecodeBatchSlot slot{8, &b};
  const auto batched = attention_decode_batch(cfg, w, xq, {&slot, 1});
  ASSERT_EQ(batched.size(), 1u);
  for (std::size_t i = 0; i < general.context.size(); ++i) {
    EXPECT_EQ(batched[0].context.span()[i], general.context.span()[i]);
  }
}

TEST(BatchDecode, FastPathOffBatchUsesGeneralKernelPerRow) {
  // With the fast path disabled a batch of N must route every row through
  // the same general kernel it would use solo — bit-for-bit, so a
  // sequence's numerics never flip with batch composition under either
  // dispatch config.
  ModelConfig cfg = tiny_config();
  cfg.decode_fast_path = false;
  const Transformer m(cfg);
  const LayerWeights& w = m.weights().layers[0];

  constexpr std::size_t kBatch = 3;
  std::vector<kv::ContiguousKvCache> solo;
  std::vector<kv::ContiguousKvCache> batch;
  for (std::size_t b = 0; b < kBatch; ++b) {
    solo.push_back(filled_cache(cfg, w, 6 + b, 50 + b));
    batch.push_back(solo.back());
  }
  const Tensor xq = random_rows(kBatch, cfg.d_model, 13);

  std::vector<AttentionResult> expected;
  for (std::size_t b = 0; b < kBatch; ++b) {
    Tensor row({1, cfg.d_model});
    for (std::size_t j = 0; j < cfg.d_model; ++j) row.row(0)[j] = xq.row(b)[j];
    const std::size_t pos[1] = {6 + b};
    expected.push_back(attention_forward(cfg, w, row, {pos, 1}, solo[b]));
  }

  std::vector<DecodeBatchSlot> slots(kBatch);
  for (std::size_t b = 0; b < kBatch; ++b) slots[b] = {6 + b, &batch[b]};
  const auto results = attention_decode_batch(cfg, w, xq, slots);
  ASSERT_EQ(results.size(), kBatch);
  for (std::size_t b = 0; b < kBatch; ++b) {
    for (std::size_t i = 0; i < expected[b].logits.size(); ++i) {
      EXPECT_EQ(results[b].logits.span()[i], expected[b].logits.span()[i])
          << "slot " << b << " logit " << i;
    }
    for (std::size_t i = 0; i < expected[b].context.size(); ++i) {
      EXPECT_EQ(results[b].context.span()[i], expected[b].context.span()[i])
          << "slot " << b << " ctx " << i;
    }
  }
}

}  // namespace
}  // namespace kf::model
