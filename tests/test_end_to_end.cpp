// Integration tests: model + data + policies + metrics wired together the
// way the benches use them.
#include <gtest/gtest.h>

#include <algorithm>

#include "data/synthetic.h"
#include "data/vocab.h"
#include "eval/experiment.h"
#include "kvcache/policy_factory.h"
#include "model/generator.h"

namespace kf {
namespace {

model::ModelConfig small_config() {
  model::ModelConfig cfg = model::ModelConfig::gptj_like();
  cfg.d_model = 64;
  cfg.n_layers = 2;
  cfg.n_heads = 4;
  cfg.d_ff = 128;
  return cfg;
}

data::SummarizationConfig small_docs() {
  data::SummarizationConfig dc;
  dc.doc_len = 160;
  dc.n_facts = 8;
  return dc;
}

TEST(EndToEnd, SalientRangeCouplingHolds) {
  // kf::model's salient token range must coincide with kf::data's fact
  // range — both derive it from vocab_size independently.
  const model::ModelConfig cfg = small_config();
  const data::TokenClasses classes(cfg.vocab_size);
  EXPECT_EQ(cfg.salient_begin(),
            static_cast<std::size_t>(classes.fact_begin));
  EXPECT_EQ(cfg.salient_end(), static_cast<std::size_t>(classes.fact_end));
}

TEST(EndToEnd, FullAttentionFidelityIsOne) {
  model::Transformer m(small_config());
  const auto samples = data::make_summarization_set(small_docs(), 2);
  auto full = kv::make_policy(kv::PolicyKind::kFull);
  eval::EvalConfig ec;
  ec.max_new_tokens = 16;
  const auto outputs = eval::generate_outputs(m, samples, *full, ec);
  const auto res =
      eval::evaluate_policy_on_task(m, samples, *full, ec, &outputs);
  EXPECT_DOUBLE_EQ(res.fid_rouge1, 1.0);
  EXPECT_DOUBLE_EQ(res.fid_rouge2, 1.0);
  EXPECT_DOUBLE_EQ(res.fid_rougeL, 1.0);
}

TEST(EndToEnd, ReducedPoliciesLoseSomeFidelity) {
  model::Transformer m(small_config());
  const auto samples = data::make_summarization_set(small_docs(), 2);
  auto full = kv::make_policy(kv::PolicyKind::kFull);
  eval::EvalConfig ec;
  ec.max_new_tokens = 16;
  const auto outputs = eval::generate_outputs(m, samples, *full, ec);
  ec.cache_ratio = 0.3;
  for (const auto kind : {kv::PolicyKind::kWindow, kv::PolicyKind::kH2O,
                          kv::PolicyKind::kKeyformer}) {
    auto policy = kv::make_policy(kind);
    const auto res =
        eval::evaluate_policy_on_task(m, samples, *policy, ec, &outputs);
    EXPECT_LT(res.fid_rouge1, 1.0) << to_string(kind);
    EXPECT_GT(res.fid_rouge1, 0.0) << to_string(kind);
  }
}

double kept_fact_fraction(const model::Transformer& m,
                          const data::Sample& s) {
  double total = 0.0;
  for (std::size_t l = 0; l < m.config().n_layers; ++l) {
    const auto pos = m.cache(l).original_positions();
    std::size_t kept = 0;
    for (const std::size_t p : s.fact_positions) {
      if (std::find(pos.begin(), pos.end(), p) != pos.end()) ++kept;
    }
    total += static_cast<double>(kept) /
             static_cast<double>(s.fact_positions.size());
  }
  return total / static_cast<double>(m.config().n_layers);
}

TEST(EndToEnd, KeyformerRetainsMoreFactsThanWindow) {
  // At a tight budget the trailing window misses most of the mid-document
  // fact zone; Keyformer's score function reaches back for it. (At looser
  // budgets a window that happens to cover the fact zone can keep more —
  // that is the Fig 7 crossover, not a bug.)
  model::Transformer m(model::ModelConfig::gptj_like());
  data::SummarizationConfig dc = small_docs();
  dc.n_distractors = 1;  // isolate the reach-back mechanism
  dc.distractor_repeats = 6;
  const auto samples = data::make_summarization_set(dc, 3);
  model::GenerationConfig g;
  g.max_new_tokens = 12;
  g.cache_ratio = 0.25;

  double kf_kept = 0.0, win_kept = 0.0;
  for (const auto& s : samples) {
    auto keyformer = kv::make_policy(kv::PolicyKind::kKeyformer);
    model::generate(m, s.prompt, *keyformer, g);
    kf_kept += kept_fact_fraction(m, s);
    auto window = kv::make_policy(kv::PolicyKind::kWindow);
    model::generate(m, s.prompt, *window, g);
    win_kept += kept_fact_fraction(m, s);
  }
  EXPECT_GT(kf_kept, win_kept);
}

TEST(EndToEnd, KeyformerRetainsMoreFactsThanH2OUnderDistractors) {
  // The Section 2.3.2 failure mode: H2O's accumulated-attention score is
  // dominated by the heavy early distractors; Keyformer's regularized
  // score keeps more of the genuinely referenced facts.
  model::ModelConfig cfg = small_config();
  model::Transformer m(cfg);
  data::SummarizationConfig dc = small_docs();
  dc.n_distractors = 5;
  dc.distractor_repeats = 16;
  const auto samples = data::make_summarization_set(dc, 4);
  model::GenerationConfig g;
  g.max_new_tokens = 12;
  g.cache_ratio = 0.35;

  double kf_kept = 0.0, h2o_kept = 0.0;
  for (const auto& s : samples) {
    auto keyformer = kv::make_policy(kv::PolicyKind::kKeyformer);
    model::generate(m, s.prompt, *keyformer, g);
    kf_kept += kept_fact_fraction(m, s);
    auto h2o = kv::make_policy(kv::PolicyKind::kH2O);
    model::generate(m, s.prompt, *h2o, g);
    h2o_kept += kept_fact_fraction(m, s);
  }
  EXPECT_GT(kf_kept, h2o_kept);
}

TEST(EndToEnd, StreamingLlmPinsSinksThroughGeneration) {
  model::Transformer m(small_config());
  const auto s = data::make_summarization_sample(small_docs(), 0);
  auto policy = kv::make_policy(kv::PolicyKind::kStreamingLLM);
  model::GenerationConfig g;
  g.max_new_tokens = 10;
  g.cache_ratio = 0.3;
  model::generate(m, s.prompt, *policy, g);
  for (std::size_t l = 0; l < m.config().n_layers; ++l) {
    const auto pos = m.cache(l).original_positions();
    for (std::size_t sink = 0; sink < 4; ++sink) {
      EXPECT_NE(std::find(pos.begin(), pos.end(), sink), pos.end())
          << "layer " << l << " sink " << sink;
    }
  }
}

TEST(EndToEnd, AllThreeModelFamiliesRunAllPolicies) {
  for (auto base :
       {model::ModelConfig::gptj_like(), model::ModelConfig::cerebras_like(),
        model::ModelConfig::mpt_like()}) {
    base.d_model = 64;
    base.n_layers = 2;
    base.d_ff = 128;
    if (base.positional == model::PositionalKind::kALiBi) base.n_heads = 8;
    else base.n_heads = 4;
    model::Transformer m(base);
    const auto s = data::make_summarization_sample(small_docs(), 1);
    for (const auto kind :
         {kv::PolicyKind::kFull, kv::PolicyKind::kWindow,
          kv::PolicyKind::kDilatedWindow, kv::PolicyKind::kRandom,
          kv::PolicyKind::kKeyAttention, kv::PolicyKind::kH2O,
          kv::PolicyKind::kStreamingLLM, kv::PolicyKind::kKeyformer}) {
      auto policy = kv::make_policy(kind);
      model::GenerationConfig g;
      g.max_new_tokens = 6;
      g.cache_ratio = kind == kv::PolicyKind::kFull ? 1.0 : 0.5;
      const auto r = model::generate(m, s.prompt, *policy, g);
      EXPECT_EQ(r.tokens.size(), 6u)
          << base.name << " " << to_string(kind);
    }
  }
}

TEST(EndToEnd, SharedVsPerLayerScoreDiffer) {
  model::Transformer m(small_config());
  const auto s = data::make_summarization_sample(small_docs(), 2);
  model::GenerationConfig g;
  g.max_new_tokens = 10;
  g.cache_ratio = 0.4;

  kv::PolicyConfig per_layer;
  per_layer.kind = kv::PolicyKind::kKeyformer;
  auto p1 = kv::make_policy(per_layer);
  const auto r1 = model::generate(m, s.prompt, *p1, g);

  const auto layer_jaccard = [&]() {
    const auto a = m.cache(0).original_positions();
    const auto b = m.cache(1).original_positions();
    std::size_t inter = 0;
    for (const std::size_t p : a) {
      if (std::find(b.begin(), b.end(), p) != b.end()) ++inter;
    }
    const std::size_t uni = a.size() + b.size() - inter;
    return static_cast<double>(inter) / static_cast<double>(uni);
  };
  const double per_layer_jaccard = layer_jaccard();

  kv::PolicyConfig shared = per_layer;
  shared.keyformer.scope = kv::ScoreScope::kShared;
  auto p2 = kv::make_policy(shared);
  const auto r2 = model::generate(m, s.prompt, *p2, g);
  const double shared_jaccard = layer_jaccard();

  // A single global score function makes the layers' keep sets much more
  // similar than per-layer scores do (they are not bit-identical because
  // the shared score keeps accumulating between the two layers' eviction
  // decisions within one step).
  EXPECT_GT(shared_jaccard, per_layer_jaccard);
  EXPECT_GT(shared_jaccard, 0.7);
  (void)r1;
  (void)r2;
}

}  // namespace
}  // namespace kf
