#include "kvcache/score_function.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "core/numerics.h"

namespace kf::kv {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

std::vector<std::size_t> iota_positions(std::size_t n) {
  std::vector<std::size_t> p(n);
  std::iota(p.begin(), p.end(), 0);
  return p;
}

TEST(TemperatureSchedule, LinearRamp) {
  TemperatureSchedule s;  // 1 -> 2
  EXPECT_DOUBLE_EQ(s.at(0, 10), 1.0);
  EXPECT_DOUBLE_EQ(s.at(5, 10), 1.5);
  EXPECT_DOUBLE_EQ(s.at(10, 10), 2.0);
}

TEST(TemperatureSchedule, StaticModeIgnoresStep) {
  TemperatureSchedule s;
  s.dynamic = false;
  s.tau_init = 1.7;
  EXPECT_DOUBLE_EQ(s.at(9, 10), 1.7);
}

TEST(TemperatureSchedule, ZeroTotalStepsFallsBackToInit) {
  TemperatureSchedule s;
  EXPECT_DOUBLE_EQ(s.at(3, 0), 1.0);
}

TEST(TemperatureSchedule, ClampsAtTauEndPastTotalSteps) {
  // Eq. 10 anneals tau_init -> tau_end over T steps; overrunning T must
  // hold tau at tau_end, never extrapolate beyond it.
  TemperatureSchedule s;  // 1 -> 2
  EXPECT_DOUBLE_EQ(s.at(11, 10), 2.0);
  EXPECT_DOUBLE_EQ(s.at(1000, 10), 2.0);
  TemperatureSchedule down;
  down.tau_init = 2.0;
  down.tau_end = 0.5;
  EXPECT_DOUBLE_EQ(down.at(99, 10), 0.5);
}

TEST(ScoreFunction, RejectsBadConfig) {
  ScoreFunctionConfig bad;
  bad.temperature.tau_init = 0.0;
  EXPECT_THROW(ScoreFunction{bad}, std::invalid_argument);
  ScoreFunctionConfig bad2;
  bad2.damping = 0.0;
  EXPECT_THROW(ScoreFunction{bad2}, std::invalid_argument);
  ScoreFunctionConfig bad3;
  bad3.damping = 1.5;
  EXPECT_THROW(ScoreFunction{bad3}, std::invalid_argument);
}

TEST(ScoreFunction, NoneAdjustmentIsExactSoftmax) {
  ScoreFunctionConfig cfg;
  cfg.adjustment = LogitAdjustment::kNone;
  const ScoreFunction fn(cfg);
  std::vector<float> logits{0.5F, 1.5F, -0.5F};
  std::vector<float> expected(3);
  softmax(logits, expected);
  std::vector<double> out(3);
  fn.increments(logits, iota_positions(3), 0, 0, 0, 10, out);
  // ScoreFunction accumulates in double; softmax() is float — compare at
  // float precision.
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(out[i], expected[i], 1e-6);
}

TEST(ScoreFunction, IncrementsSumToOne) {
  for (const auto adj :
       {LogitAdjustment::kNone, LogitAdjustment::kConstant,
        LogitAdjustment::kGaussian, LogitAdjustment::kGumbel}) {
    ScoreFunctionConfig cfg;
    cfg.adjustment = adj;
    const ScoreFunction fn(cfg);
    std::vector<float> logits{0.2F, -1.0F, 2.0F, 0.0F};
    std::vector<double> out(4);
    fn.increments(logits, iota_positions(4), 1, 2, 3, 16, out);
    double sum = 0.0;
    for (const double v : out) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-9) << to_string(adj);
  }
}

TEST(ScoreFunction, MaskedLogitsGetZeroIncrement) {
  ScoreFunctionConfig cfg;
  const ScoreFunction fn(cfg);
  std::vector<float> logits{1.0F, -kInf, 0.0F};
  std::vector<double> out(3);
  fn.increments(logits, iota_positions(3), 0, 0, 0, 8, out);
  EXPECT_EQ(out[1], 0.0);
  EXPECT_GT(out[0], out[2]);
}

TEST(ScoreFunction, NoiseFrozenPerSlot) {
  ScoreFunctionConfig cfg;
  const ScoreFunction fn(cfg);
  EXPECT_DOUBLE_EQ(fn.noise(1, 2, 3), fn.noise(1, 2, 3));
  EXPECT_NE(fn.noise(1, 2, 3), fn.noise(1, 2, 4));
  EXPECT_NE(fn.noise(0, 2, 3), fn.noise(1, 2, 3));
  EXPECT_NE(fn.noise(1, 0, 3), fn.noise(1, 2, 3));
}

TEST(ScoreFunction, NoiseCacheKeysDoNotCollide) {
  // Regression: the memo key was once packed as (layer<<48)|(head<<40)|pos,
  // so (head=0, pos=2^40) aliased (head=1, pos=0) and (head=256, pos=0)
  // aliased (layer+1, head=0, pos=0). Distinct slots must keep distinct
  // frozen realizations even at long-context positions and wide head counts.
  ScoreFunctionConfig cfg;
  const ScoreFunction fn(cfg);
  const std::size_t big_pos = std::size_t{1} << 40;
  // Memoized re-reads must return the slot's own frozen value even after
  // an aliasing key has been cached in between.
  const double first = fn.noise(0, 0, big_pos);
  const double alias = fn.noise(0, 1, 0);
  EXPECT_NE(first, alias);
  EXPECT_DOUBLE_EQ(fn.noise(0, 0, big_pos), first);
  EXPECT_DOUBLE_EQ(fn.noise(0, 1, 0), alias);
  EXPECT_NE(fn.noise(0, 256, 0), fn.noise(1, 0, 0));
}

TEST(ScoreFunction, ResetNoiseKeepsRealizationsStable) {
  // reset_noise() drops the memo tables (bounded per-sequence memory), but
  // the frozen values are pure functions of (seed, layer, head, position)
  // so re-reads after a reset must reproduce the same realizations.
  ScoreFunction fn{ScoreFunctionConfig{}};
  const double before = fn.noise(2, 3, 17);
  const double big = fn.noise(0, 0, std::size_t{1} << 40);  // beyond memo cap
  fn.reset_noise();
  EXPECT_DOUBLE_EQ(fn.noise(2, 3, 17), before);
  EXPECT_DOUBLE_EQ(fn.noise(0, 0, std::size_t{1} << 40), big);
}

TEST(ScoreFunction, NoiseSeedChangesRealization) {
  ScoreFunctionConfig a;
  ScoreFunctionConfig b;
  b.seed = 43;
  EXPECT_NE(ScoreFunction(a).noise(0, 0, 0), ScoreFunction(b).noise(0, 0, 0));
}

TEST(ScoreFunction, ConstantAdjustmentCancelsInSoftmax) {
  // Adding the same constant to every logit must not change the result.
  ScoreFunctionConfig cfg;
  cfg.adjustment = LogitAdjustment::kConstant;
  const ScoreFunction fn(cfg);
  ScoreFunctionConfig none_cfg;
  none_cfg.adjustment = LogitAdjustment::kNone;
  const ScoreFunction none_fn(none_cfg);
  std::vector<float> logits{0.1F, 0.9F, -0.3F};
  std::vector<double> a(3), b(3);
  fn.increments(logits, iota_positions(3), 0, 0, 0, 4, a);
  none_fn.increments(logits, iota_positions(3), 0, 0, 0, 4, b);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(a[i], b[i], 1e-9);
}

TEST(ScoreFunction, GumbelNoiseScaleControlsPerturbation) {
  std::vector<float> logits{0.0F, 0.1F, 0.2F, 0.3F, 0.4F};
  ScoreFunctionConfig weak;
  weak.noise_scale = 0.01;
  ScoreFunctionConfig strong;
  strong.noise_scale = 3.0;
  std::vector<double> none(5), w(5), s(5);
  ScoreFunctionConfig none_cfg;
  none_cfg.adjustment = LogitAdjustment::kNone;
  ScoreFunction(none_cfg).increments(logits, iota_positions(5), 0, 0, 0, 4,
                                     none);
  ScoreFunction(weak).increments(logits, iota_positions(5), 0, 0, 0, 4, w);
  ScoreFunction(strong).increments(logits, iota_positions(5), 0, 0, 0, 4, s);
  double weak_dev = 0.0, strong_dev = 0.0;
  for (int i = 0; i < 5; ++i) {
    weak_dev += std::abs(w[i] - none[i]);
    strong_dev += std::abs(s[i] - none[i]);
  }
  EXPECT_LT(weak_dev, strong_dev);
  EXPECT_LT(weak_dev, 0.05);
}

TEST(ScoreFunction, HigherTauFlattensIncrements) {
  // Eq. 8-style check: expected increments under Gumbel adjustment with a
  // growing tau have higher entropy than the plain softmax.
  std::vector<float> logits{2.0F, 0.0F, -1.0F, 0.5F};
  ScoreFunctionConfig cfg;  // dynamic 1 -> 2
  const ScoreFunction fn(cfg);
  std::vector<double> early(4), late(4);
  fn.increments(logits, iota_positions(4), 0, 0, /*t=*/0, 10, early);
  fn.increments(logits, iota_positions(4), 0, 0, /*t=*/10, 10, late);
  std::vector<float> fe(early.begin(), early.end());
  std::vector<float> fl(late.begin(), late.end());
  EXPECT_GT(entropy(fl), entropy(fe));
}

TEST(ScoreFunction, GumbelExpectedEntropyExceedsPlainSoftmax) {
  // H(E[z_gumbel]) > H(E[z]) (Eq. 8), averaged over many heads.
  std::vector<float> logits{3.0F, 1.0F, 0.0F, -1.0F, 0.5F, 0.2F};
  ScoreFunctionConfig cfg;
  cfg.noise_scale = 1.0;
  const ScoreFunction fn(cfg);
  ScoreFunctionConfig none_cfg;
  none_cfg.adjustment = LogitAdjustment::kNone;
  const ScoreFunction base(none_cfg);

  std::vector<double> mean_gumbel(6, 0.0), plain(6);
  std::vector<double> tmp(6);
  const int trials = 2000;
  for (int trial = 0; trial < trials; ++trial) {
    fn.increments(logits, iota_positions(6), 0,
                  static_cast<std::size_t>(trial), 0, 4, tmp);
    for (int i = 0; i < 6; ++i) mean_gumbel[i] += tmp[i] / trials;
  }
  base.increments(logits, iota_positions(6), 0, 0, 0, 4, plain);
  std::vector<float> g(mean_gumbel.begin(), mean_gumbel.end());
  std::vector<float> p(plain.begin(), plain.end());
  EXPECT_GT(entropy(g), entropy(p));
}

TEST(ToString, AllAdjustments) {
  EXPECT_EQ(to_string(LogitAdjustment::kNone), "none");
  EXPECT_EQ(to_string(LogitAdjustment::kConstant), "constant");
  EXPECT_EQ(to_string(LogitAdjustment::kGaussian), "gaussian");
  EXPECT_EQ(to_string(LogitAdjustment::kGumbel), "gumbel");
}

}  // namespace
}  // namespace kf::kv
