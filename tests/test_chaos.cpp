// Randomized fault-injection ("chaos") suite for the serving stack.
//
// A SeededFaultInjector vetoes ~10% of block reservations and ~10% of
// block allocations while a paged engine — its pool sized to roughly half
// the workload's aggregate demand — drives a mixed batch of staggered
// arrivals, deadlines, and queue caps. Whatever the failure pattern, the
// engine's robustness invariants must hold:
//   1. run() never throws: every per-request problem is contained;
//   2. every request terminates with a definite finish reason (never
//      kRunning), and kRejected/kTimeout responses carry an error string;
//   3. after teardown the pool holds zero used and zero reserved blocks —
//      no leak survives any interleaving of faults and preemptions;
//   4. sequences that complete normally (kLength) are token-exact against
//      a fault-free solo run — faults may delay or evict work, never
//      corrupt it (recompute-based resume replays exactly).
// The suite runs under ASan and TSan in CI (see .github/workflows/ci.yml).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/rng.h"
#include "kvcache/policy_factory.h"
#include "serve/engine.h"
#include "serve/fault.h"

namespace kf::serve {
namespace {

using model::ModelConfig;
using model::Token;
using model::Transformer;

ModelConfig tiny_config() {
  ModelConfig cfg;
  cfg.vocab_size = 64;
  cfg.d_model = 16;
  cfg.n_layers = 2;
  cfg.n_heads = 2;
  cfg.d_ff = 32;
  cfg.max_seq_len = 512;
  return cfg;
}

std::vector<Token> make_prompt(std::size_t n, std::uint64_t seed = 42) {
  Rng rng(seed);
  std::vector<Token> prompt(n);
  for (auto& t : prompt) {
    t = static_cast<Token>(rng.uniform_u64(64));
  }
  return prompt;
}

/// The chaos workload: mixed prompt lengths, staggered arrivals, a couple
/// of deadlines and queue caps sprinkled in. Deterministic per seed.
std::vector<Request> chaos_requests(std::uint64_t seed, std::size_t n = 8) {
  Rng rng(seed);
  std::vector<Request> requests(n);
  for (std::size_t i = 0; i < n; ++i) {
    requests[i].id = i;
    requests[i].prompt = make_prompt(16 + rng.uniform_u64(24), seed * 100 + i);
    requests[i].gen.max_new_tokens = 4 + rng.uniform_u64(8);
    requests[i].gen.cache_ratio = 0.5;
    requests[i].arrival_step = rng.uniform_u64(8);
    if (i % 4 == 2) requests[i].deadline_steps = 12 + rng.uniform_u64(20);
    if (i % 4 == 3) requests[i].max_queue_steps = 10 + rng.uniform_u64(20);
  }
  return requests;
}

/// Paged engine config whose pool is ~`fraction` of the workload's
/// aggregate admission demand.
EngineConfig chaos_config(const std::vector<Request>& requests,
                          double fraction) {
  EngineConfig ec;
  ec.policy.kind = kv::PolicyKind::kKeyformer;
  ec.paged.enabled = true;
  ec.paged.n_shards = 2;
  ec.paged.block_tokens = 8;
  std::size_t demand_blocks = 0;
  for (const auto& r : requests) {
    // 2 layers, admission peak = full prompt per layer.
    demand_blocks += 2 * ((r.prompt.size() + 7) / 8);
  }
  const auto scaled =
      static_cast<std::size_t>(static_cast<double>(demand_blocks) * fraction);
  ec.paged.blocks_per_shard = std::max<std::size_t>(
      8, (scaled + ec.paged.n_shards - 1) / ec.paged.n_shards);
  return ec;
}

void expect_definite_outcomes(const std::vector<Request>& requests,
                              const std::vector<Response>& responses) {
  ASSERT_EQ(responses.size(), requests.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    const auto& r = responses[i];
    EXPECT_NE(r.finish, FinishReason::kRunning) << "req " << i;
    if (r.finish == FinishReason::kRejected ||
        r.finish == FinishReason::kTimeout) {
      EXPECT_FALSE(r.error.empty()) << "req " << i;
    } else {
      EXPECT_TRUE(r.error.empty()) << "req " << i;
    }
    if (r.finish == FinishReason::kLength) {
      EXPECT_EQ(r.tokens.size(), requests[i].gen.max_new_tokens)
          << "req " << i;
    }
  }
}

TEST(Chaos, FaultsNeverLeakBlocksOrLoseDefiniteOutcomes) {
  Transformer model(tiny_config());
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const auto requests = chaos_requests(seed);
    const EngineConfig ec = chaos_config(requests, /*fraction=*/0.5);
    Engine engine(model, ec);
    FaultInjectorConfig fc;
    fc.reserve_failure_rate = 0.10;
    fc.allocate_failure_rate = 0.10;
    fc.seed = seed;
    SeededFaultInjector injector(fc);
    engine.set_fault_injector(&injector);

    // Invariant 1: contained — a throw escaping run() fails the test.
    const auto responses = engine.run(requests);
    engine.set_fault_injector(nullptr);

    // Invariant 2: definite outcomes.
    expect_definite_outcomes(requests, responses);

    // Invariant 3: nothing leaked, whatever the interleaving.
    ASSERT_NE(engine.pool(), nullptr);
    EXPECT_EQ(engine.pool()->stats().used_blocks, 0u) << "seed " << seed;
    EXPECT_EQ(engine.pool()->stats().reserved_blocks, 0u) << "seed " << seed;

    // Invariant 4: normal finishers are token-exact against a fault-free
    // solo run — faults delay work, they never corrupt it.
    for (std::size_t i = 0; i < responses.size(); ++i) {
      if (responses[i].finish != FinishReason::kLength) continue;
      Engine solo(model, ec);
      Request alone = requests[i];
      alone.arrival_step = 0;
      alone.deadline_steps = 0;
      alone.max_queue_steps = 0;
      const auto solo_resp = solo.run({&alone, 1});
      EXPECT_EQ(responses[i].tokens, solo_resp[0].tokens)
          << "seed " << seed << " req " << i;
    }

    // The run was not vacuous: the injector actually vetoed something.
    EXPECT_GT(injector.reserve_failures() + injector.allocate_failures(), 0u)
        << "seed " << seed;
  }
}

TEST(Chaos, TotalReservationFailureStillTerminatesEveryRequest) {
  // 100% reserve-failure rate: nothing can ever be admitted. The retry cap
  // must turn every request into a definite kRejected instead of spinning
  // the admission loop forever.
  Transformer model(tiny_config());
  const auto requests = chaos_requests(/*seed=*/4, /*n=*/4);
  EngineConfig ec = chaos_config(requests, 0.5);
  ec.scheduler.max_reserve_retries = 8;  // keep the run short
  Engine engine(model, ec);
  FaultInjectorConfig fc;
  fc.reserve_failure_rate = 1.0;
  fc.seed = 4;
  SeededFaultInjector injector(fc);
  engine.set_fault_injector(&injector);
  const auto responses = engine.run(requests);
  engine.set_fault_injector(nullptr);
  for (const auto& r : responses) {
    // Queue-capped requests may time out first; everyone terminates.
    EXPECT_TRUE(r.finish == FinishReason::kRejected ||
                r.finish == FinishReason::kTimeout);
    EXPECT_FALSE(r.error.empty());
    EXPECT_TRUE(r.tokens.empty());
  }
  EXPECT_EQ(engine.pool()->stats().used_blocks, 0u);
  EXPECT_EQ(engine.pool()->stats().reserved_blocks, 0u);
}

TEST(Chaos, AllocateFaultsForceParksButStreamsStayExact) {
  // Allocation faults strike mid-decode: the cache falls back to emergency
  // memory, the engine parks the sequence, and the resume replays it
  // exactly. Higher rate than the mixed test to hammer the park path.
  Transformer model(tiny_config());
  const auto requests = chaos_requests(/*seed=*/5, /*n=*/6);
  const EngineConfig ec = chaos_config(requests, 0.6);
  Engine engine(model, ec);
  FaultInjectorConfig fc;
  fc.allocate_failure_rate = 0.25;
  fc.seed = 5;
  SeededFaultInjector injector(fc);
  engine.set_fault_injector(&injector);
  const auto responses = engine.run(requests);
  engine.set_fault_injector(nullptr);
  expect_definite_outcomes(requests, responses);
  EXPECT_EQ(engine.pool()->stats().used_blocks, 0u);
  EXPECT_EQ(engine.pool()->stats().reserved_blocks, 0u);
  EXPECT_GT(injector.allocate_failures(), 0u);
  for (std::size_t i = 0; i < responses.size(); ++i) {
    if (responses[i].finish != FinishReason::kLength) continue;
    Engine solo(model, ec);
    Request alone = requests[i];
    alone.arrival_step = 0;
    alone.deadline_steps = 0;
    alone.max_queue_steps = 0;
    const auto solo_resp = solo.run({&alone, 1});
    EXPECT_EQ(responses[i].tokens, solo_resp[0].tokens)
        << "req " << i;
  }
}

}  // namespace
}  // namespace kf::serve
