// Property-style parameterized suites over (policy x budget x model
// family): the invariants every eviction scheme must uphold end-to-end.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "data/synthetic.h"
#include "kvcache/kv_cache.h"
#include "kvcache/policy_factory.h"
#include "model/generator.h"

namespace kf {
namespace {

model::ModelConfig family_config(model::PositionalKind pos) {
  model::ModelConfig cfg;
  cfg.vocab_size = 256;
  cfg.d_model = 48;
  cfg.n_layers = 2;
  cfg.n_heads = pos == model::PositionalKind::kALiBi ? 6 : 4;
  cfg.d_ff = 96;
  cfg.positional = pos;
  cfg.max_seq_len = 512;
  cfg.weight_seed = 99;
  return cfg;
}

data::Sample doc_sample() {
  data::SummarizationConfig dc;
  dc.doc_len = 120;
  dc.n_facts = 8;
  dc.vocab_size = 256;
  return data::make_summarization_sample(dc, 0);
}

using PropertyParam =
    std::tuple<kv::PolicyKind, double, model::PositionalKind>;

class GenerationInvariants
    : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(GenerationInvariants, BudgetOrderAndDeterminism) {
  const auto [kind, ratio, pos] = GetParam();
  model::Transformer m(family_config(pos));
  const data::Sample s = doc_sample();

  kv::PolicyConfig pc;
  pc.kind = kind;
  auto policy = kv::make_policy(pc);
  model::GenerationConfig g;
  g.max_new_tokens = 8;
  g.cache_ratio = ratio;
  const model::GenerationResult r = model::generate(m, s.prompt, *policy, g);

  // 1. Tokens produced.
  EXPECT_EQ(r.tokens.size(), 8u);

  // 2. Budget invariant: every layer's cache sits exactly at budget.
  const kv::CacheBudget b = kv::make_budget(s.prompt.size(), ratio);
  for (const std::size_t size : r.final_cache_sizes) {
    EXPECT_EQ(size, b.max_tokens);
  }

  // 3. Original-position order ascending in every cache.
  for (std::size_t l = 0; l < m.config().n_layers; ++l) {
    const auto posns = m.cache(l).original_positions();
    EXPECT_TRUE(std::is_sorted(posns.begin(), posns.end()));
  }

  // 4. Deterministic rerun.
  auto policy2 = kv::make_policy(pc);
  const model::GenerationResult r2 =
      model::generate(m, s.prompt, *policy2, g);
  EXPECT_EQ(r.tokens, r2.tokens);
}

INSTANTIATE_TEST_SUITE_P(
    PolicyBudgetFamily, GenerationInvariants,
    ::testing::Combine(
        ::testing::Values(kv::PolicyKind::kWindow, kv::PolicyKind::kRandom,
                          kv::PolicyKind::kH2O, kv::PolicyKind::kStreamingLLM,
                          kv::PolicyKind::kKeyformer),
        ::testing::Values(0.25, 0.5, 0.75),
        ::testing::Values(model::PositionalKind::kRoPE,
                          model::PositionalKind::kALiBi,
                          model::PositionalKind::kLearned)),
    [](const auto& info) {
      return to_string(std::get<0>(info.param)) + "_r" +
             std::to_string(
                 static_cast<int>(std::get<1>(info.param) * 100)) +
             "_" + to_string(std::get<2>(info.param));
    });

class RecentWindowGuarantee
    : public ::testing::TestWithParam<kv::PolicyKind> {};

TEST_P(RecentWindowGuarantee, TrailingTokensAlwaysCached) {
  // Window/H2O/Keyformer/StreamingLLM all guarantee the most recent token
  // stays cached after every decode step.
  model::Transformer m(family_config(model::PositionalKind::kRoPE));
  const data::Sample s = doc_sample();
  auto policy = kv::make_policy(GetParam());
  model::GenerationConfig g;
  g.max_new_tokens = 8;
  g.cache_ratio = 0.3;
  model::generate(m, s.prompt, *policy, g);
  // Last appended position: prompt + 7 steps - 1.
  const std::size_t last_pos = s.prompt.size() + 8 - 2;
  for (std::size_t l = 0; l < m.config().n_layers; ++l) {
    const auto posns = m.cache(l).original_positions();
    ASSERT_FALSE(posns.empty());
    EXPECT_EQ(posns.back(), last_pos) << "layer " << l;
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, RecentWindowGuarantee,
                         ::testing::Values(kv::PolicyKind::kWindow,
                                           kv::PolicyKind::kH2O,
                                           kv::PolicyKind::kStreamingLLM,
                                           kv::PolicyKind::kKeyformer),
                         [](const auto& info) {
                           return to_string(info.param);
                         });

class KeyformerBudgetMonotone : public ::testing::TestWithParam<double> {};

TEST_P(KeyformerBudgetMonotone, MoreBudgetKeepsMoreFacts) {
  const double ratio = GetParam();
  model::Transformer m(family_config(model::PositionalKind::kRoPE));
  const data::Sample s = doc_sample();

  const auto kept_at = [&](double r) {
    auto policy = kv::make_policy(kv::PolicyKind::kKeyformer);
    model::GenerationConfig g;
    g.max_new_tokens = 6;
    g.cache_ratio = r;
    model::generate(m, s.prompt, *policy, g);
    std::size_t kept = 0;
    const auto posns = m.cache(0).original_positions();
    for (const std::size_t p : s.fact_positions) {
      if (std::find(posns.begin(), posns.end(), p) != posns.end()) ++kept;
    }
    return kept;
  };
  EXPECT_LE(kept_at(ratio), kept_at(std::min(1.0, ratio + 0.3)) + 1);
}

INSTANTIATE_TEST_SUITE_P(Ratios, KeyformerBudgetMonotone,
                         ::testing::Values(0.2, 0.4, 0.6));

TEST(Properties, Damping1IsCanonicalH2O) {
  model::Transformer m(family_config(model::PositionalKind::kRoPE));
  const data::Sample s = doc_sample();
  model::GenerationConfig g;
  g.max_new_tokens = 6;
  g.cache_ratio = 0.4;

  kv::PolicyConfig a;
  a.kind = kv::PolicyKind::kH2O;
  a.h2o_damping = 1.0;
  auto p1 = kv::make_policy(a);
  const auto r1 = model::generate(m, s.prompt, *p1, g);

  auto p2 = kv::make_policy(kv::PolicyKind::kH2O);
  const auto r2 = model::generate(m, s.prompt, *p2, g);
  EXPECT_EQ(r1.tokens, r2.tokens);
}

TEST(Properties, DampingReweightsTowardRecentEvidence) {
  // Two-phase scenario: phase 1 boosts token A, phase 2 boosts token B.
  // Without damping, A's earlier accumulation wins; with strong damping,
  // the recency-weighted score ranks B above A.
  kv::ContiguousKvCache plain(1, 1), damped(1, 1);
  const std::vector<float> row{0.0F};
  for (std::size_t i = 0; i < 4; ++i) {
    plain.append(row, row, i);
    damped.append(row, row, i);
  }
  const std::size_t a = 0, b = 1;
  // Phase 1: three updates favoring A.
  for (int step = 0; step < 3; ++step) {
    plain.add_score(0, a, 1.0);
    damped.damp_scores(0.5);
    damped.add_score(0, a, 1.0);
  }
  // Phase 2: two updates favoring B.
  for (int step = 0; step < 2; ++step) {
    plain.add_score(0, b, 1.0);
    damped.damp_scores(0.5);
    damped.add_score(0, b, 1.0);
  }
  EXPECT_GT(plain.total_score(a), plain.total_score(b));
  EXPECT_LT(damped.total_score(a), damped.total_score(b));
}

TEST(Properties, DilatedWindowReachesFurtherBack) {
  model::Transformer m(family_config(model::PositionalKind::kRoPE));
  const data::Sample s = doc_sample();
  model::GenerationConfig g;
  g.max_new_tokens = 4;
  g.cache_ratio = 0.3;

  auto window = kv::make_policy(kv::PolicyKind::kWindow);
  model::generate(m, s.prompt, *window, g);
  const std::size_t window_oldest = m.cache(0).original_position(0);

  auto dilated = kv::make_policy(kv::PolicyKind::kDilatedWindow);
  model::generate(m, s.prompt, *dilated, g);
  const std::size_t dilated_oldest = m.cache(0).original_position(0);
  EXPECT_LT(dilated_oldest, window_oldest);
}

}  // namespace
}  // namespace kf
