#include "core/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace kf {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.u64(), b.u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.u64() == b.u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformOpenNeverZero) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(rng.uniform_open(), 0.0);
  }
}

TEST(Rng, UniformU64Bounded) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform_u64(17), 17u);
  }
}

TEST(Rng, UniformU64CoversRange) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_u64(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, GumbelMoments) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gumbel();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, kGumbelMean, 0.02);
  EXPECT_NEAR(std::sqrt(var), kGumbelStddev, 0.03);
}

TEST(Rng, GumbelIsRightSkewed) {
  Rng rng(17);
  const int n = 100000;
  double m3 = 0.0;
  std::vector<double> xs(n);
  double mean = 0.0;
  for (auto& x : xs) {
    x = rng.gumbel();
    mean += x;
  }
  mean /= n;
  double var = 0.0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= n;
  for (const double x : xs) m3 += std::pow(x - mean, 3);
  m3 /= n;
  const double skew = m3 / std::pow(var, 1.5);
  // Standard Gumbel skewness is ~1.14.
  EXPECT_GT(skew, 0.9);
  EXPECT_LT(skew, 1.4);
}

TEST(Rng, ForkIndependence) {
  Rng parent(21);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (c1.u64() == c2.u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(StatelessRng, DeterministicInKey) {
  const double a = stateless_gumbel({1, 2, 3});
  const double b = stateless_gumbel({1, 2, 3});
  EXPECT_EQ(a, b);
}

TEST(StatelessRng, OrderSensitive) {
  EXPECT_NE(stateless_gumbel({1, 2}), stateless_gumbel({2, 1}));
}

TEST(StatelessRng, GumbelMatchesDistribution) {
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += stateless_gumbel({99, static_cast<std::uint64_t>(i)});
  }
  EXPECT_NEAR(sum / n, kGumbelMean, 0.02);
}

TEST(StatelessRng, NormalMatchesDistribution) {
  const int n = 100000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = stateless_normal({7, static_cast<std::uint64_t>(i)});
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(StatelessRng, UniformInOpenInterval) {
  for (int i = 0; i < 1000; ++i) {
    const double u = stateless_uniform({static_cast<std::uint64_t>(i)});
    EXPECT_GT(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(HashCombine, AsymmetricAndStable) {
  EXPECT_EQ(hash_combine(1, 2), hash_combine(1, 2));
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
  EXPECT_NE(hash_combine(0, 0), 0u);
}

}  // namespace
}  // namespace kf
