#include "eval/experiment.h"

#include <gtest/gtest.h>

#include "data/fewshot.h"
#include "data/synthetic.h"
#include "kvcache/policy_factory.h"

namespace kf::eval {
namespace {

model::ModelConfig small_config() {
  model::ModelConfig cfg = model::ModelConfig::gptj_like();
  cfg.d_model = 64;
  cfg.n_layers = 2;
  cfg.n_heads = 4;
  cfg.d_ff = 128;
  return cfg;
}

TEST(Experiment, GenerateOutputsOnePerSample) {
  model::Transformer m(small_config());
  data::SummarizationConfig dc;
  dc.doc_len = 120;
  const auto samples = data::make_summarization_set(dc, 3);
  auto policy = kv::make_policy(kv::PolicyKind::kFull);
  EvalConfig ec;
  ec.max_new_tokens = 8;
  const auto outputs = generate_outputs(m, samples, *policy, ec);
  ASSERT_EQ(outputs.size(), 3u);
  for (const auto& o : outputs) EXPECT_EQ(o.size(), 8u);
}

TEST(Experiment, ResultFieldsPopulated) {
  model::Transformer m(small_config());
  data::SummarizationConfig dc;
  dc.doc_len = 120;
  const auto samples = data::make_summarization_set(dc, 2);
  auto policy = kv::make_policy(kv::PolicyKind::kKeyformer);
  EvalConfig ec;
  ec.max_new_tokens = 8;
  ec.cache_ratio = 0.5;
  const auto res = evaluate_policy_on_task(m, samples, *policy, ec);
  EXPECT_EQ(res.policy, "keyformer");
  EXPECT_EQ(res.n_samples, 2u);
  EXPECT_DOUBLE_EQ(res.cache_ratio, 0.5);
  EXPECT_GE(res.ref_rouge1, 0.0);
  EXPECT_LE(res.ref_rouge1, 1.0);
  EXPECT_GT(res.mean_wall_seconds, 0.0);
  EXPECT_GT(res.mean_prefill_seconds, 0.0);
  EXPECT_GT(res.mean_decode_seconds, 0.0);
  EXPECT_GT(res.decode_tokens_per_s, 0.0);
  EXPECT_NEAR(res.mean_wall_seconds,
              res.mean_prefill_seconds + res.mean_decode_seconds, 1e-9);
  // No fidelity reference passed -> fidelity stays zero.
  EXPECT_DOUBLE_EQ(res.fid_rouge1, 0.0);
}

TEST(Experiment, SpecialTokensBannedByDefault) {
  model::Transformer m(small_config());
  data::SummarizationConfig dc;
  dc.doc_len = 120;
  const auto samples = data::make_summarization_set(dc, 1);
  auto policy = kv::make_policy(kv::PolicyKind::kFull);
  EvalConfig ec;
  ec.max_new_tokens = 12;
  const auto outputs = generate_outputs(m, samples, *policy, ec);
  for (const Token t : outputs[0]) {
    EXPECT_GE(t, data::kFirstContentToken);
  }
}

TEST(Experiment, McqFullAttentionBeatsChance) {
  model::Transformer m(small_config());
  data::McqConfig mc;
  mc.kind = data::McqTaskKind::kCopa;
  const auto samples = data::make_mcq_set(mc, 24);
  auto policy = kv::make_policy(kv::PolicyKind::kFull);
  EvalConfig ec;
  const double acc = mcq_accuracy(m, samples, *policy, ec);
  EXPECT_GT(acc, 0.6);  // chance = 0.5
  EXPECT_LE(acc, 1.0);
}

TEST(Experiment, McqAccuracyDeterministic) {
  model::Transformer m(small_config());
  data::McqConfig mc;
  const auto samples = data::make_mcq_set(mc, 8);
  auto policy = kv::make_policy(kv::PolicyKind::kKeyformer);
  EvalConfig ec;
  ec.cache_ratio = 0.5;
  const double a = mcq_accuracy(m, samples, *policy, ec);
  const double b = mcq_accuracy(m, samples, *policy, ec);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Experiment, McqSevereEvictionHurts) {
  model::Transformer m(small_config());
  data::McqConfig mc;
  mc.kind = data::McqTaskKind::kOpenBookQa;
  const auto samples = data::make_mcq_set(mc, 24);
  EvalConfig full_cfg;
  auto full = kv::make_policy(kv::PolicyKind::kFull);
  const double full_acc = mcq_accuracy(m, samples, *full, full_cfg);
  EvalConfig tiny_cfg;
  tiny_cfg.cache_ratio = 0.1;
  auto window = kv::make_policy(kv::PolicyKind::kWindow);
  const double window_acc = mcq_accuracy(m, samples, *window, tiny_cfg);
  EXPECT_LE(window_acc, full_acc);
}

}  // namespace
}  // namespace kf::eval
