#include "core/csv.h"
#include "core/table.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace kf {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t("Demo");
  t.header({"name", "value"});
  t.row({"alpha", Table::num(1.5, 2)});
  t.row({"beta", Table::num(12LL)});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Demo"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.50"), std::string::npos);
  EXPECT_NE(s.find("12"), std::string::npos);
}

TEST(Table, AlignsColumns) {
  Table t;
  t.header({"a", "long-header"});
  t.row({"xxxxxx", "y"});
  std::istringstream is(t.to_string());
  std::string header_line, sep, row_line;
  std::getline(is, header_line);
  std::getline(is, sep);
  std::getline(is, row_line);
  // Second column starts at the same offset in both lines.
  EXPECT_EQ(header_line.find("long-header"), row_line.find("y"));
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 3), "3.142");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::num(-42LL), "-42");
}

TEST(Table, RaggedRowsPadded) {
  Table t;
  t.header({"a", "b", "c"});
  t.row({"only-one"});
  EXPECT_NO_THROW(t.to_string());
}

TEST(Csv, BasicRoundtrip) {
  CsvWriter csv({"x", "y"});
  csv.add_row({"1", "2"});
  csv.add_row({"3", "4"});
  EXPECT_EQ(csv.to_string(), "x,y\n1,2\n3,4\n");
}

TEST(Csv, EscapesSpecialCharacters) {
  CsvWriter csv({"text"});
  csv.add_row({"hello, world"});
  csv.add_row({"say \"hi\""});
  const std::string s = csv.to_string();
  EXPECT_NE(s.find("\"hello, world\""), std::string::npos);
  EXPECT_NE(s.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Csv, FromTableCopiesEverything) {
  Table t;
  t.header({"h1", "h2"});
  t.row({"a", "b"});
  const CsvWriter csv = CsvWriter::from_table(t);
  EXPECT_EQ(csv.to_string(), "h1,h2\na,b\n");
}

TEST(Csv, WritesFile) {
  const std::string path = ::testing::TempDir() + "/kf_csv_test.csv";
  CsvWriter csv({"col"});
  csv.add_row({"v"});
  ASSERT_TRUE(csv.write_file(path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "col\nv\n");
  std::remove(path.c_str());
}

TEST(Csv, WriteFileFailsOnBadPath) {
  CsvWriter csv({"col"});
  EXPECT_FALSE(csv.write_file("/nonexistent-dir-xyz/file.csv"));
}

}  // namespace
}  // namespace kf
