#include "model/transformer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "kvcache/policies/full.h"
#include "kvcache/policies/keyformer.h"
#include "kvcache/policies/streaming_llm.h"
#include "kvcache/policies/window.h"

namespace kf::model {
namespace {

ModelConfig tiny_config(PositionalKind pos = PositionalKind::kRoPE) {
  ModelConfig cfg;
  cfg.vocab_size = 64;
  cfg.d_model = 16;
  cfg.n_layers = 2;
  cfg.n_heads = 2;
  cfg.d_ff = 32;
  cfg.positional = pos;
  cfg.max_seq_len = 128;
  return cfg;
}

std::vector<Token> make_prompt(std::size_t n) {
  std::vector<Token> p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = static_cast<Token>((i * 7 + 5) % 64);
  }
  return p;
}

TEST(Transformer, PrefillShapes) {
  Transformer m(tiny_config());
  kv::FullAttentionPolicy policy;
  const auto prompt = make_prompt(10);
  const Tensor logits = m.prefill(prompt, policy, 4);
  EXPECT_EQ(logits.dim(0), 10u);
  EXPECT_EQ(logits.dim(1), 64u);
  EXPECT_EQ(m.cache_size(0), 10u);
  EXPECT_EQ(m.cache_size(1), 10u);
  EXPECT_EQ(m.total_cache_tokens(), 20u);
}

TEST(Transformer, RejectsEmptyPromptAndDirtyCache) {
  Transformer m(tiny_config());
  kv::FullAttentionPolicy policy;
  EXPECT_THROW(m.prefill({}, policy, 1), std::invalid_argument);
  const auto prompt = make_prompt(4);
  m.prefill(prompt, policy, 1);
  EXPECT_THROW(m.prefill(prompt, policy, 1), std::logic_error);
  m.reset();
  EXPECT_NO_THROW(m.prefill(prompt, policy, 1));
}

TEST(Transformer, RejectsOutOfVocabToken) {
  Transformer m(tiny_config());
  kv::FullAttentionPolicy policy;
  const std::vector<Token> bad{1, 2, 64};
  EXPECT_THROW(m.prefill(bad, policy, 1), std::out_of_range);
  const std::vector<Token> neg{1, -1};
  m.reset();
  EXPECT_THROW(m.prefill(neg, policy, 1), std::out_of_range);
}

TEST(Transformer, DeterministicAcrossInstances) {
  const ModelConfig cfg = tiny_config();
  Transformer a(cfg);
  Transformer b(cfg);
  kv::FullAttentionPolicy policy;
  const auto prompt = make_prompt(8);
  const Tensor la = a.prefill(prompt, policy, 2);
  const Tensor lb = b.prefill(prompt, policy, 2);
  for (std::size_t i = 0; i < la.size(); ++i) {
    EXPECT_EQ(la.span()[i], lb.span()[i]);
  }
}

class PrefillDecodeEquivalence
    : public ::testing::TestWithParam<PositionalKind> {};

TEST_P(PrefillDecodeEquivalence, StepwiseDecodeMatchesPrefill) {
  // Processing the prompt in one prefill call or token-by-token must give
  // the same final logits under full attention.
  const ModelConfig cfg = tiny_config(GetParam());
  const auto prompt = make_prompt(9);

  Transformer batch(cfg);
  kv::FullAttentionPolicy p1;
  const Tensor full = batch.prefill(prompt, p1, 1);
  const auto last = full.row(prompt.size() - 1);

  Transformer step(cfg);
  kv::FullAttentionPolicy p2;
  const std::vector<Token> first{prompt[0]};
  Tensor l = step.prefill(first, p2, 1);
  std::vector<float> row(l.row(0).begin(), l.row(0).end());
  for (std::size_t i = 1; i < prompt.size(); ++i) {
    row = step.decode(prompt[i], i, i, prompt.size(), p2);
  }
  ASSERT_EQ(row.size(), last.size());
  for (std::size_t i = 0; i < row.size(); ++i) {
    EXPECT_NEAR(row[i], last[i], 2e-3F) << "vocab " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, PrefillDecodeEquivalence,
                         ::testing::Values(PositionalKind::kRoPE,
                                           PositionalKind::kALiBi,
                                           PositionalKind::kLearned),
                         [](const auto& info) {
                           return to_string(info.param);
                         });

TEST(Transformer, ObserverSeesEveryLayer) {
  Transformer m(tiny_config());
  kv::FullAttentionPolicy policy;
  std::vector<std::size_t> layers_seen;
  m.set_observer([&](const AttentionObservation& obs) {
    layers_seen.push_back(obs.layer);
    EXPECT_TRUE(obs.is_prompt);
    EXPECT_NE(obs.attn, nullptr);
    EXPECT_EQ(obs.key_positions.size(), 6u);
  });
  m.prefill(make_prompt(6), policy, 1);
  EXPECT_EQ(layers_seen, (std::vector<std::size_t>{0, 1}));
}

TEST(Transformer, PolicyEvictsDuringPrefill) {
  Transformer m(tiny_config());
  kv::WindowPolicy policy;
  policy.set_budget(kv::make_budget(16, 0.5));
  const auto prompt = make_prompt(16);
  m.prefill(prompt, policy, 4);
  EXPECT_EQ(m.cache_size(0), 8u);
  EXPECT_EQ(m.cache_size(1), 8u);
}

TEST(Transformer, DecodeKeepsBudgetSteady) {
  Transformer m(tiny_config());
  kv::WindowPolicy policy;
  policy.set_budget(kv::make_budget(16, 0.5));
  const auto prompt = make_prompt(16);
  m.prefill(prompt, policy, 4);
  for (std::size_t t = 1; t <= 4; ++t) {
    m.decode(static_cast<Token>(t), 15 + t, t, 4, policy);
    EXPECT_EQ(m.cache_size(0), 8u) << "step " << t;
  }
}

TEST(Transformer, LogitsAreFinite) {
  Transformer m(tiny_config(PositionalKind::kALiBi));
  kv::FullAttentionPolicy policy;
  const Tensor logits = m.prefill(make_prompt(12), policy, 1);
  for (const float v : logits.span()) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(Transformer, DecodeFastPathMatchesGeneralPathEndToEnd) {
  // Full-stack golden parity: prefill + several decode steps through every
  // layer, with Keyformer eviction active, driving the same token stream
  // through a fast-path model and a general-path model. LM logits must
  // agree within float rounding at every step.
  for (const auto kind : {PositionalKind::kRoPE, PositionalKind::kALiBi,
                          PositionalKind::kLearned}) {
    const ModelConfig base = tiny_config(kind);
    const auto prompt = make_prompt(16);

    const auto run = [&](bool fast) {
      ModelConfig cfg = base;
      cfg.decode_fast_path = fast;
      Transformer m(cfg);
      kv::KeyformerPolicy policy;
      policy.set_budget(kv::make_budget(prompt.size(), 0.5));
      kv::SequenceInfo info;
      info.prompt_len = prompt.size();
      info.total_steps = 4;
      info.n_layers = cfg.n_layers;
      info.n_heads = cfg.n_heads;
      policy.begin_sequence(info);
      m.prefill(prompt, policy, 4);
      std::vector<std::vector<float>> step_logits;
      for (std::size_t t = 1; t <= 4; ++t) {
        step_logits.push_back(
            m.decode(static_cast<Token>(t), prompt.size() + t - 1, t, 4,
                     policy));
      }
      return step_logits;
    };

    const auto fast = run(true);
    const auto general = run(false);
    ASSERT_EQ(fast.size(), general.size());
    for (std::size_t t = 0; t < fast.size(); ++t) {
      ASSERT_EQ(fast[t].size(), general[t].size());
      for (std::size_t i = 0; i < fast[t].size(); ++i) {
        EXPECT_NEAR(fast[t][i], general[t][i], 1e-4F)
            << to_string(kind) << " step " << t << " logit " << i;
      }
    }
  }
}

TEST(Transformer, PositionModeSwitchAffectsDecodeAfterEviction) {
  // Note: a *window* policy keeps a contiguous tail, whose relative
  // distances are identical under both position modes (RoPE depends only
  // on relative offsets) — so this test needs a policy with a scattered
  // keep set. StreamingLLM keeps sinks + tail: the sink-to-query distance
  // shrinks under kNew.
  const ModelConfig cfg = tiny_config(PositionalKind::kRoPE);
  const auto prompt = make_prompt(16);
  const auto run = [&](PositionMode mode) {
    Transformer m(cfg);
    m.set_position_mode(mode);
    kv::StreamingLlmPolicy policy;
    policy.set_budget(kv::make_budget(16, 0.4));
    m.prefill(prompt, policy, 2);
    return m.decode(3, 16, 1, 2, policy);
  };
  const auto a = run(PositionMode::kOriginal);
  const auto b = run(PositionMode::kNew);
  bool differs = false;
  for (std::size_t i = 0; i < a.size() && !differs; ++i) {
    differs = std::abs(a[i] - b[i]) > 1e-5F;
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace kf::model
