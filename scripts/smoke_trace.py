#!/usr/bin/env python3
"""Smoke-test serve_sim's observability surface.

Runs serve_sim with --trace / --metrics / --metrics-csv, then checks
that the artifacts actually round-trip:

  1. the Chrome trace file parses as JSON, has the Trace Event envelope
     (displayTimeUnit + traceEvents), and contains complete ("X") spans
     with non-negative durations covering the engine phases;
  2. the metrics CSV carries the shared percentile-column schema
     ({series}_p50_ms/_p95_ms/_p99_ms for ttft/itl/queue_wait/step) and
     one data row of finite numbers;
  3. the --metrics stdout report prints the latency-percentile table;
  4. the Prometheus text exposition has well-formed # TYPE lines and
     counter/histogram families with cumulative le= buckets, +Inf,
     _sum and _count;
  5. the monitor time-series JSON parses, reports polls > 0, and every
     series carries [t, value] sample pairs with monotone timestamps.

Usage: smoke_trace.py /path/to/serve_sim
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

REQUIRED_SPANS = {"engine.run", "prefill", "step_batch", "sample", "retire"}
SERIES = ("ttft", "itl", "queue_wait", "step")
SUFFIXES = ("_p50_ms", "_p95_ms", "_p99_ms")


def fail(msg: str) -> None:
    print(f"smoke_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_trace(path: Path) -> None:
    with path.open() as f:
        doc = json.load(f)
    if doc.get("displayTimeUnit") != "ms":
        fail(f"displayTimeUnit missing/unexpected: {doc.get('displayTimeUnit')!r}")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing or empty")
    names = set()
    for ev in events:
        for key in ("name", "cat", "ph", "ts", "pid", "tid"):
            if key not in ev:
                fail(f"event missing {key!r}: {ev}")
        if ev["ph"] == "X":
            if ev.get("dur", -1) < 0:
                fail(f"complete span with negative/missing dur: {ev}")
            names.add(ev["name"])
        if ev["ts"] < 0:
            fail(f"negative timestamp: {ev}")
    missing = REQUIRED_SPANS - names
    if missing:
        fail(f"trace lacks expected spans: {sorted(missing)}")
    print(f"smoke_trace: trace OK ({len(events)} events, "
          f"{len(names)} distinct span names)")


def check_csv(path: Path) -> None:
    lines = path.read_text().splitlines()
    if len(lines) < 2:
        fail(f"metrics CSV has {len(lines)} line(s); want header + row")
    header = lines[0].split(",")
    expected = [s + suf for s in SERIES for suf in SUFFIXES]
    for col in expected:
        if col not in header:
            fail(f"metrics CSV missing column {col!r} (header: {header})")
    row = lines[1].split(",")
    if len(row) != len(header):
        fail(f"metrics CSV row width {len(row)} != header width {len(header)}")
    for col, cell in zip(header, row):
        try:
            value = float(cell)
        except ValueError:
            fail(f"metrics CSV cell {col}={cell!r} is not numeric")
        if not (value >= 0.0):
            fail(f"metrics CSV cell {col}={cell!r} is negative/NaN")
    print(f"smoke_trace: metrics CSV OK ({len(header)} columns)")


def check_prometheus(path: Path) -> None:
    lines = path.read_text().splitlines()
    if not lines:
        fail("prometheus exposition is empty")
    types = {}     # metric family -> declared type
    histograms = {}  # family -> {"buckets": [(le, count)], "sum": ..., "count": ...}
    samples = 0
    for line in lines:
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        samples += 1
        name = line.split("{", 1)[0].split(" ", 1)[0]
        if not name.startswith("kf_"):
            fail(f"sample without kf_ prefix: {line!r}")
        try:
            value = float(line.rsplit(" ", 1)[1])
        except ValueError:
            fail(f"non-numeric sample value: {line!r}")
        if name.endswith("_bucket"):
            family = name[: -len("_bucket")]
            le = line.split('le="', 1)[1].split('"', 1)[0]
            bound = float("inf") if le == "+Inf" else float(le)
            histograms.setdefault(family, {"buckets": []})["buckets"].append(
                (bound, value))
        elif name.endswith("_sum"):
            histograms.setdefault(name[:-4], {"buckets": []})["sum"] = value
        elif name.endswith("_count"):
            histograms.setdefault(name[:-6], {"buckets": []})["count"] = value
    if samples == 0:
        fail("prometheus exposition has no samples")
    counters = [m for m, t in types.items() if t == "counter"]
    if not counters:
        fail("prometheus exposition declares no counters")
    for name in counters:
        if not name.endswith("_total"):
            fail(f"counter family {name!r} lacks the _total suffix")
    hist_families = [m for m, t in types.items() if t == "histogram"]
    if not hist_families:
        fail("prometheus exposition declares no histograms")
    for family in hist_families:
        h = histograms.get(family)
        if h is None or not h["buckets"]:
            fail(f"histogram {family!r} has no _bucket samples")
        if "sum" not in h or "count" not in h:
            fail(f"histogram {family!r} missing _sum/_count")
        bounds = [b for b, _ in h["buckets"]]
        counts = [c for _, c in h["buckets"]]
        if bounds != sorted(bounds) or bounds[-1] != float("inf"):
            fail(f"histogram {family!r} buckets not sorted / missing +Inf")
        if counts != sorted(counts):
            fail(f"histogram {family!r} bucket counts not cumulative")
        if counts[-1] != h["count"]:
            fail(f"histogram {family!r}: +Inf bucket {counts[-1]} != "
                 f"_count {h['count']}")
    print(f"smoke_trace: prometheus OK ({samples} samples, "
          f"{len(counters)} counters, {len(hist_families)} histograms)")


def check_timeseries(path: Path) -> None:
    with path.open() as f:
        doc = json.load(f)
    for key in ("period_ms", "polls", "series"):
        if key not in doc:
            fail(f"timeseries JSON missing {key!r}")
    if doc["polls"] <= 0:
        fail(f"timeseries JSON reports polls={doc['polls']}; monitor never ran")
    series = doc["series"]
    if not isinstance(series, list) or not series:
        fail("timeseries JSON has no series")
    for s in series:
        for key in ("name", "dropped", "samples"):
            if key not in s:
                fail(f"series entry missing {key!r}: {s}")
        last_t = float("-inf")
        for sample in s["samples"]:
            if (not isinstance(sample, list) or len(sample) != 2
                    or not all(isinstance(v, (int, float)) for v in sample)):
                fail(f"series {s['name']!r} has malformed sample {sample!r}")
            if sample[0] < last_t:
                fail(f"series {s['name']!r} timestamps not monotone")
            last_t = sample[0]
    names = {s["name"] for s in series}
    for required in ("engine.steps", "pool.used_blocks"):
        if required not in names:
            fail(f"timeseries JSON lacks the {required!r} probe")
    print(f"smoke_trace: timeseries OK ({len(series)} series, "
          f"{doc['polls']} polls)")


def main() -> None:
    if len(sys.argv) != 2:
        fail("usage: smoke_trace.py /path/to/serve_sim")
    serve_sim = sys.argv[1]
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "trace.json"
        csv_path = Path(tmp) / "metrics.csv"
        prom_path = Path(tmp) / "metrics.prom"
        ts_path = Path(tmp) / "timeseries.json"
        cmd = [
            serve_sim, "--shards", "2", "--block-tokens", "16",
            "--kv-budget", "1200", "--metrics",
            "--trace", str(trace_path), "--metrics-csv", str(csv_path),
            "--monitor-period-ms", "5", "--prom-out", str(prom_path),
            "--timeseries-out", str(ts_path),
        ]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout + proc.stderr)
            fail(f"serve_sim exited {proc.returncode}")
        if "latency percentiles" not in proc.stdout:
            fail("--metrics report missing the latency-percentiles table")
        if "metrics registry" not in proc.stdout:
            fail("--metrics report missing the registry dump")
        check_trace(trace_path)
        check_csv(csv_path)
        check_prometheus(prom_path)
        check_timeseries(ts_path)
    print("smoke_trace: PASS")


if __name__ == "__main__":
    main()
