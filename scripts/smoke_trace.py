#!/usr/bin/env python3
"""Smoke-test serve_sim's observability surface.

Runs serve_sim with --trace / --metrics / --metrics-csv, then checks
that the artifacts actually round-trip:

  1. the Chrome trace file parses as JSON, has the Trace Event envelope
     (displayTimeUnit + traceEvents), and contains complete ("X") spans
     with non-negative durations covering the engine phases;
  2. the metrics CSV carries the shared percentile-column schema
     ({series}_p50_ms/_p95_ms/_p99_ms for ttft/itl/queue_wait/step) and
     one data row of finite numbers;
  3. the --metrics stdout report prints the latency-percentile table.

Usage: smoke_trace.py /path/to/serve_sim
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

REQUIRED_SPANS = {"engine.run", "prefill", "step_batch", "sample", "retire"}
SERIES = ("ttft", "itl", "queue_wait", "step")
SUFFIXES = ("_p50_ms", "_p95_ms", "_p99_ms")


def fail(msg: str) -> None:
    print(f"smoke_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_trace(path: Path) -> None:
    with path.open() as f:
        doc = json.load(f)
    if doc.get("displayTimeUnit") != "ms":
        fail(f"displayTimeUnit missing/unexpected: {doc.get('displayTimeUnit')!r}")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing or empty")
    names = set()
    for ev in events:
        for key in ("name", "cat", "ph", "ts", "pid", "tid"):
            if key not in ev:
                fail(f"event missing {key!r}: {ev}")
        if ev["ph"] == "X":
            if ev.get("dur", -1) < 0:
                fail(f"complete span with negative/missing dur: {ev}")
            names.add(ev["name"])
        if ev["ts"] < 0:
            fail(f"negative timestamp: {ev}")
    missing = REQUIRED_SPANS - names
    if missing:
        fail(f"trace lacks expected spans: {sorted(missing)}")
    print(f"smoke_trace: trace OK ({len(events)} events, "
          f"{len(names)} distinct span names)")


def check_csv(path: Path) -> None:
    lines = path.read_text().splitlines()
    if len(lines) < 2:
        fail(f"metrics CSV has {len(lines)} line(s); want header + row")
    header = lines[0].split(",")
    expected = [s + suf for s in SERIES for suf in SUFFIXES]
    for col in expected:
        if col not in header:
            fail(f"metrics CSV missing column {col!r} (header: {header})")
    row = lines[1].split(",")
    if len(row) != len(header):
        fail(f"metrics CSV row width {len(row)} != header width {len(header)}")
    for col, cell in zip(header, row):
        try:
            value = float(cell)
        except ValueError:
            fail(f"metrics CSV cell {col}={cell!r} is not numeric")
        if not (value >= 0.0):
            fail(f"metrics CSV cell {col}={cell!r} is negative/NaN")
    print(f"smoke_trace: metrics CSV OK ({len(header)} columns)")


def main() -> None:
    if len(sys.argv) != 2:
        fail("usage: smoke_trace.py /path/to/serve_sim")
    serve_sim = sys.argv[1]
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "trace.json"
        csv_path = Path(tmp) / "metrics.csv"
        cmd = [
            serve_sim, "--shards", "2", "--block-tokens", "16",
            "--kv-budget", "1200", "--metrics",
            "--trace", str(trace_path), "--metrics-csv", str(csv_path),
        ]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout + proc.stderr)
            fail(f"serve_sim exited {proc.returncode}")
        if "latency percentiles" not in proc.stdout:
            fail("--metrics report missing the latency-percentiles table")
        if "metrics registry" not in proc.stdout:
            fail("--metrics report missing the registry dump")
        check_trace(trace_path)
        check_csv(csv_path)
    print("smoke_trace: PASS")


if __name__ == "__main__":
    main()
