#!/usr/bin/env python3
"""Project lint: structural checks the compiler can't make.

Run from anywhere (the repo root is located relative to this file):

    python3 scripts/lint.py

Checks (each failure lists file and reason; exit code 1 on any):
  1. every tests/test_*.cpp is registered in tests/CMakeLists.txt --
     a suite that isn't in KF_TEST_SUITES builds nobody and gates nothing;
  2. every header carries an include guard (#pragma once or #ifndef);
  3. no direct console output (std::cout, std::cerr, printf, fprintf) in
     src/ library code -- the library reports through return values; the
     one sanctioned diagnostic path is kf::obs::diag (src/obs/log.cpp
     holds the single allowlisted fprintf);
  4. no thread-safety-analysis suppressions (KF_NO_THREAD_SAFETY_ANALYSIS)
     in src/mem, src/serve, src/core, or src/obs -- the annotated
     subsystems stay fully analyzed; a suppression is a finding, not a
     fix;
  5. no `throw` inside the engine's per-request paths (Engine::run,
     Engine::start_sequence, BatchScheduler::admit) -- run() promises a
     definite finish reason for every request, and a throw in a
     ThreadPool::parallel_for worker is std::terminate, so per-request
     failures must be contained (kRejected/kTimeout/park), never thrown;
  6. SIMD variant TUs stay behind the dispatch table -- nobody #includes
     a *_avx2.cpp / *_avx512.cpp file (their per-file -m flags only apply
     when they compile as their own TU; textual inclusion would leak AVX
     instructions into a generic object), and the avx2:: / avx512::
     variant namespaces are only named inside src/cpu (everyone else goes
     through the cpu::*_stub tables, which is what keeps the binary
     portable);
  7. no KF_TRACE_SCOPE / KF_TRACE_INSTANT in the per-ISA variant TUs
     (src/cpu/kernels_avx2.cpp, kernels_avx512.cpp) -- the innermost SIMD
     loops must stay branch-free of tracing; kernel time reaches the
     tracer through the AttentionTimings / PolicyTimings sinks instead.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def check_test_registration() -> list[str]:
    """Every tests/test_*.cpp must appear in tests/CMakeLists.txt."""
    cmake = (REPO / "tests" / "CMakeLists.txt").read_text()
    registered = set(re.findall(r"\btest_\w+\b", cmake))
    errors = []
    for path in sorted((REPO / "tests").glob("test_*.cpp")):
        if path.stem not in registered:
            errors.append(
                f"{path.relative_to(REPO)}: suite not registered in "
                "tests/CMakeLists.txt (add it to KF_TEST_SUITES)"
            )
    return errors


def check_include_guards() -> list[str]:
    """Every header needs #pragma once or a classic include guard."""
    errors = []
    for sub in ("src", "tests", "bench", "examples"):
        root = REPO / sub
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*.h")):
            text = path.read_text()
            if "#pragma once" in text:
                continue
            if re.search(r"#ifndef\s+\w+\s*\n\s*#define\s+\w+", text):
                continue
            errors.append(
                f"{path.relative_to(REPO)}: missing include guard "
                "(#pragma once)"
            )
    return errors


def check_no_console_io_in_library() -> list[str]:
    """src/ is library code: no std::cout/std::cerr/printf/fprintf.

    Diagnostics go through kf::obs::diag so tests can observe them and a
    future logging backend swaps in at one site; src/obs/log.cpp is that
    site and holds the single allowlisted fprintf.
    """
    allowlist = {REPO / "src" / "obs" / "log.cpp"}
    print_re = re.compile(r"\b(?:std::)?(?:printf|fprintf)\s*\(")
    errors = []
    for path in sorted((REPO / "src").rglob("*.cpp")):
        if path in allowlist:
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            code = line.split("//")[0]
            if "std::cout" in code or "std::cerr" in code or print_re.search(code):
                errors.append(
                    f"{path.relative_to(REPO)}:{lineno}: console output in "
                    "library code (return data, or diagnose via "
                    "kf::obs::diag)"
                )
    return errors


def check_no_tsa_suppressions() -> list[str]:
    """The annotated concurrent subsystems carry zero analysis opt-outs."""
    errors = []
    definition_site = REPO / "src" / "core" / "annotations.h"
    for sub in ("src/mem", "src/serve", "src/core", "src/obs"):
        for path in sorted((REPO / sub).rglob("*")):
            if path.suffix not in (".h", ".cpp") or path == definition_site:
                continue
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                if "KF_NO_THREAD_SAFETY_ANALYSIS" in line.split("//")[0]:
                    errors.append(
                        f"{path.relative_to(REPO)}:{lineno}: thread-safety "
                        "analysis suppressed (annotate instead)"
                    )
    return errors


def _strip_comments(text: str) -> str:
    """Removes // and /* */ comments (keeps newlines for line numbers)."""
    text = re.sub(r"//[^\n]*", "", text)
    return re.sub(
        r"/\*.*?\*/", lambda m: "\n" * m.group(0).count("\n"), text,
        flags=re.S,
    )


def _function_body(text: str, signature_re: str) -> tuple[int, str] | None:
    """Extracts the brace-matched body of the first definition matching
    `signature_re`, returning (first line number, body) or None."""
    match = re.search(signature_re, text)
    if match is None:
        return None
    open_brace = text.find("{", match.end())
    if open_brace < 0:
        return None
    depth = 0
    for i in range(open_brace, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return (
                    text.count("\n", 0, open_brace) + 1,
                    text[open_brace : i + 1],
                )
    return None


def check_no_throw_in_request_paths() -> list[str]:
    """Engine::run's per-request paths contain no `throw` statement."""
    targets = [
        ("src/serve/engine.cpp", r"std::vector<Response>\s+Engine::run\b"),
        ("src/serve/engine.cpp", r"void\s+Engine::start_sequence\b"),
        ("src/serve/scheduler.cpp",
         r"std::vector<Sequence\*>\s+BatchScheduler::admit\b"),
    ]
    errors = []
    for rel, signature in targets:
        text = _strip_comments((REPO / rel).read_text())
        extracted = _function_body(text, signature)
        if extracted is None:
            errors.append(f"{rel}: definition matching {signature!r} not "
                          "found (lint check out of date?)")
            continue
        start_line, body = extracted
        for offset, line in enumerate(body.splitlines()):
            if re.search(r"\bthrow\b", line):
                errors.append(
                    f"{rel}:{start_line + offset}: `throw` inside a "
                    "per-request engine path (contain as kRejected/"
                    "kTimeout instead; run() must not throw)"
                )
    return errors


def check_simd_variants_behind_dispatch() -> list[str]:
    """ISA variant TUs are linked, never included, and only src/cpu names
    the variant namespaces directly."""
    errors = []
    include_re = re.compile(r"#include\s*[<\"][^<\">]*_avx(2|512)\.cpp")
    variant_ns_re = re.compile(r"\bavx(2|512)\s*::")
    cpu_dir = REPO / "src" / "cpu"
    for sub in ("src", "tests", "bench", "examples"):
        root = REPO / sub
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix not in (".h", ".cpp"):
                continue
            text = _strip_comments(path.read_text())
            for lineno, line in enumerate(text.splitlines(), 1):
                if include_re.search(line):
                    errors.append(
                        f"{path.relative_to(REPO)}:{lineno}: #include of an "
                        "ISA variant TU (variant files must compile as their "
                        "own translation units with per-file -m flags)"
                    )
                if cpu_dir not in path.parents and variant_ns_re.search(line):
                    errors.append(
                        f"{path.relative_to(REPO)}:{lineno}: direct use of a "
                        "SIMD variant namespace outside src/cpu (call "
                        "through the cpu::*_stub dispatch tables)"
                    )
    return errors


def check_no_tracing_in_isa_variants() -> list[str]:
    """The per-ISA kernel TUs never carry trace macros: the hot SIMD loops
    stay identical across variants, and kernel time flows to the tracer
    through the timing sinks the generic layer reads."""
    errors = []
    for rel in ("src/cpu/kernels_avx2.cpp", "src/cpu/kernels_avx512.cpp"):
        path = REPO / rel
        if not path.is_file():
            continue
        text = _strip_comments(path.read_text())
        for lineno, line in enumerate(text.splitlines(), 1):
            if "KF_TRACE_SCOPE" in line or "KF_TRACE_INSTANT" in line:
                errors.append(
                    f"{rel}:{lineno}: trace macro in a per-ISA variant TU "
                    "(report kernel time through the timing sinks instead)"
                )
    return errors


def main() -> int:
    checks = [
        ("test registration", check_test_registration),
        ("include guards", check_include_guards),
        ("no console output in src/", check_no_console_io_in_library),
        ("no TSA suppressions", check_no_tsa_suppressions),
        ("no throw in request paths", check_no_throw_in_request_paths),
        ("SIMD variants behind dispatch", check_simd_variants_behind_dispatch),
        ("no tracing in ISA variant TUs", check_no_tracing_in_isa_variants),
    ]
    failed = False
    for name, check in checks:
        errors = check()
        if errors:
            failed = True
            print(f"lint: {name}: {len(errors)} finding(s)")
            for err in errors:
                print(f"  {err}")
        else:
            print(f"lint: {name}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
