// Serving simulator: sweep batch size and sequence length on the
// A100/MPT-7B cost model to find the throughput/OOM frontier for full
// attention vs Keyformer — the capacity-planning view behind Table 1's
// "bigger batch" row.
//
//   ./examples/serve_sim
#include <iostream>

#include "keyformer/keyformer.h"

using namespace kf;

int main() {
  const perf::CostModel cm(perf::DeviceSpec::a100_80gb(),
                           perf::ModelSpec::mpt_7b());

  Table t("serving frontier: tokens/s by (sequence, batch); OOM = does not fit");
  t.header({"sequence", "batch", "full_attention", "keyformer_50%",
            "keyformer_gain"});

  for (const std::size_t len : {1024u, 2048u, 4096u}) {
    for (const std::size_t batch : {1u, 2u, 4u, 8u}) {
      perf::WorkloadSpec full;
      full.prompt_len = len;
      full.gen_len = len;
      full.batch = batch;
      const auto cf = cm.run(full);

      perf::WorkloadSpec kfw = full;
      kfw.cache_mode = perf::CacheMode::kStaticPrompt;
      kfw.cache_ratio = 0.5;
      kfw.policy_cost = perf::PolicyCost::kGumbelTopK;
      const auto ck = cm.run(kfw);

      const std::string full_cell =
          cf.oom ? "OOM" : Table::num(cf.throughput_tokens_per_s, 1);
      const std::string kf_cell =
          ck.oom ? "OOM" : Table::num(ck.throughput_tokens_per_s, 1);
      std::string gain = "-";
      if (!ck.oom && cf.oom) gain = "fits where full OOMs";
      else if (!ck.oom && !cf.oom) {
        gain = Table::num(
                   ck.throughput_tokens_per_s / cf.throughput_tokens_per_s,
                   2) +
               "x";
      }
      t.row({std::to_string(len) + "+" + std::to_string(len),
             Table::num(static_cast<long long>(batch)), full_cell, kf_cell,
             gain});
    }
  }
  t.print(std::cout);

  std::cout << "Capacity planning view: halving the KV cache both speeds "
               "up each sequence and roughly doubles the batch size that "
               "fits in HBM — the two compounding wins behind the paper's "
               "2.4x throughput claim.\n";
  return 0;
}
