// Serving simulator: drive the real continuous-batching Engine with a
// bursty mixed workload — short chat turns, mid-size summaries, and one
// long document, arriving staggered over time — and print the per-request
// latency ledger plus engine aggregates.
//
// This replaces the old cost-model projection with measured numbers: the
// Engine really admits, prefills, batches, and retires each request
// (per-sequence KV caches + Keyformer eviction at 50% cache ratio).
//
//   ./examples/serve_sim [max_batch] [kv_budget_tokens]
//     max_batch         max concurrent sequences (default 4)
//     kv_budget_tokens  scheduler memory budget; 0 = unlimited
//                       (default 600)
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/parse.h"
#include "keyformer/keyformer.h"

using namespace kf;

namespace {

serve::Request make_request(std::uint64_t id, std::size_t prompt_len,
                            std::size_t gen_tokens, std::size_t arrival,
                            const model::ModelConfig& cfg, Rng& rng) {
  serve::Request req;
  req.id = id;
  req.arrival_step = arrival;
  req.prompt.resize(prompt_len);
  for (auto& t : req.prompt) {
    t = static_cast<model::Token>(rng.uniform_u64(cfg.vocab_size));
  }
  req.gen.max_new_tokens = gen_tokens;
  req.gen.cache_ratio = 0.5;
  return req;
}

/// Strict non-negative integer parse; exits with usage on garbage (a bare
/// strtoull would turn "abc" or " -4" into 0 or a huge count silently).
std::size_t parse_count_arg(const char* arg, const char* name) {
  const auto v = parse_count(arg);
  if (!v.has_value()) {
    std::cerr << "error: " << name << " must be a non-negative integer, got \""
              << arg << "\"\nusage: serve_sim [max_batch] [kv_budget_tokens]\n";
    std::exit(1);
  }
  return static_cast<std::size_t>(*v);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t max_batch =
      argc > 1 ? parse_count_arg(argv[1], "max_batch") : 4;
  const std::size_t kv_budget =
      argc > 2 ? parse_count_arg(argv[2], "kv_budget_tokens") : 600;

  model::ModelConfig cfg = model::ModelConfig::gptj_like();
  cfg.max_seq_len = 4096;
  model::Transformer m(cfg);

  // Bursty mixed workload: chat turns trickle in, summaries arrive in a
  // burst, one long document lands mid-stream.
  Rng rng(7);
  std::vector<serve::Request> requests;
  std::uint64_t id = 0;
  for (std::size_t i = 0; i < 4; ++i) {  // chat turns
    requests.push_back(
        make_request(id++, 48, 24, /*arrival=*/i * 6, cfg, rng));
  }
  for (std::size_t i = 0; i < 3; ++i) {  // summary burst at step 8
    requests.push_back(make_request(id++, 192, 32, /*arrival=*/8, cfg, rng));
  }
  requests.push_back(  // long document at step 12
      make_request(id++, 512, 48, /*arrival=*/12, cfg, rng));

  serve::EngineConfig ec;
  ec.policy.kind = kv::PolicyKind::kKeyformer;
  ec.scheduler.max_batch_size = max_batch;
  ec.scheduler.max_concurrent_tokens = kv_budget;
  serve::Engine engine(m, ec);

  std::cout << "serving " << requests.size()
            << " staggered requests (max_batch " << max_batch
            << ", kv budget "
            << (kv_budget == 0 ? std::string("unlimited")
                               : std::to_string(kv_budget) + " tokens")
            << ", keyformer @50% cache)\n\n";

  const auto responses = engine.run(requests);

  Table t("per-request latency ledger (steps are engine decode ticks)");
  t.header({"req", "prompt", "tokens", "arrive", "start", "finish",
            "queued", "prefill_ms", "decode_ms", "decode_tok/s", "reason"});
  for (const auto& r : responses) {
    t.row({Table::num(static_cast<long long>(r.id)),
           Table::num(static_cast<long long>(r.prompt_len)),
           Table::num(static_cast<long long>(r.tokens.size())),
           Table::num(static_cast<long long>(r.arrival_step)),
           Table::num(static_cast<long long>(r.first_decode_step)),
           Table::num(static_cast<long long>(r.finish_step)),
           Table::num(
               static_cast<long long>(r.first_decode_step - r.arrival_step)),
           Table::num(1e3 * r.prefill_seconds, 2),
           Table::num(1e3 * r.decode_seconds, 2),
           Table::num(r.decode_tokens_per_s(), 1),
           to_string(r.finish)});
  }
  t.print(std::cout);

  const auto& st = engine.stats();
  std::cout << "\nengine: " << st.steps << " decode steps, peak batch "
            << st.max_batch << ", peak KV in use " << st.max_tokens_in_use
            << " tokens, aggregate decode throughput "
            << Table::num(st.decode_tokens_per_s(), 1) << " tok/s\n";
  std::cout << "Queued steps show admission control at work: requests wait "
               "when the batch or the KV-memory budget is full, and join "
               "mid-stream as earlier sequences retire. Lowering the cache "
               "ratio shrinks each sequence's footprint, admitting more of "
               "them at once (see bench_serve_throughput).\n";
  return 0;
}
