// Serving simulator: drive the real continuous-batching Engine with a
// bursty mixed workload — short chat turns, mid-size summaries, and one
// long document, arriving staggered over time — and print the per-request
// latency ledger plus engine aggregates.
//
// This replaces the old cost-model projection with measured numbers: the
// Engine really admits, prefills, batches, and retires each request
// (per-sequence KV caches + Keyformer eviction at 50% cache ratio).
//
//   ./examples/serve_sim [--max-batch N] [--kv-budget N]
//                        [--shards N] [--block-tokens N]
//                        [--shared-prefix N] [--trace FILE]
//                        [--metrics] [--metrics-csv FILE]
//     --max-batch N       max concurrent sequences (default 4)
//     --kv-budget N       scheduler memory budget in per-layer tokens;
//                         0 = unlimited (default 600)
//     --shards N          enable paged KV memory on an N-shard block pool
//                         (default 0 = classic contiguous caches)
//     --block-tokens N    tokens per pool block (default 16; paged only)
//     --shared-prefix N   switch to a shared-context workload: every
//                         request opens with the same ~N-token few-shot
//                         context (from src/data/fewshot) and the engine's
//                         prefix cache replays it instead of re-prefilling
//                         (requires --shards; prints hit-rate / blocks-
//                         saved summary)
//     --trace FILE        record engine/kernel spans and write a Chrome
//                         trace-event JSON to FILE (open in Perfetto or
//                         chrome://tracing)
//     --metrics           print the engine's latency percentile table
//                         (TTFT, inter-token, queue wait, per-step decode)
//                         and the full metrics-registry counter dump
//     --metrics-csv FILE  write a one-row CSV of the canonical latency
//                         columns (ttft/itl/queue_wait/step x p50/p95/p99)
//     --monitor-period-ms N  start a background Monitor thread polling
//                         engine/pool/prefix probes every N ms while the
//                         run is live (0 = off, the default)
//     --prom-out FILE     after the run, write the metrics registry in
//                         Prometheus text-exposition format to FILE
//     --timeseries-out FILE  write the monitor's time-series rings as
//                         JSON to FILE (implies a 5 ms monitor period
//                         when --monitor-period-ms is not given)
//
// With --shards the budget stops being an abstract token count: admission
// reserves real blocks on a shard, and the summary reports pool
// utilization and internal fragmentation. With --shared-prefix it also
// becomes a multi-tenant cache: one copy of the shared context's KV
// backs every request that carries it, copy-on-write under eviction.
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/csv.h"
#include "core/parse.h"
#include "data/fewshot.h"
#include "keyformer/keyformer.h"
#include "kvcache/eviction_telemetry.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/monitor.h"
#include "obs/trace.h"

using namespace kf;

namespace {

serve::Request make_request(std::uint64_t id, std::size_t prompt_len,
                            std::size_t gen_tokens, std::size_t arrival,
                            const model::ModelConfig& cfg, Rng& rng) {
  serve::Request req;
  req.id = id;
  req.arrival_step = arrival;
  req.prompt.resize(prompt_len);
  for (auto& t : req.prompt) {
    t = static_cast<model::Token>(rng.uniform_u64(cfg.vocab_size));
  }
  req.gen.max_new_tokens = gen_tokens;
  req.gen.cache_ratio = 0.5;
  return req;
}

[[noreturn]] void usage_exit(const std::string& message) {
  std::cerr << "error: " << message
            << "\nusage: serve_sim [--max-batch N] [--kv-budget N] "
               "[--shards N] [--block-tokens N] [--shared-prefix N]\n";
  std::exit(1);
}

/// A few-shot context of ~`tokens` tokens drawn from the synthetic MCQ
/// generator (shots only — the per-request "question" is appended by the
/// caller). Trimmed to the requested length.
std::vector<model::Token> make_shared_context(std::size_t tokens,
                                              std::size_t vocab) {
  data::McqConfig mc;
  mc.vocab_size = vocab;
  // Enough shots to cover the request; each shot is ~passage_len/3 + 3.
  mc.n_shots = tokens / (mc.passage_len / 3 + 3) + 1;
  const data::McqSample sample = data::make_mcq_sample(mc, /*index=*/0);
  std::vector<model::Token> ctx = sample.prompt;
  if (ctx.size() > tokens) ctx.resize(tokens);
  return ctx;
}

/// Strict non-negative integer parse; exits with usage on garbage (a bare
/// strtoull would turn "abc" or " -4" into 0 or a huge count silently).
std::size_t parse_count_arg(const char* arg, const char* name) {
  const auto v = parse_count(arg);
  if (!v.has_value()) {
    usage_exit(std::string(name) + " must be a non-negative integer, got \"" +
               (arg == nullptr ? "" : arg) + "\"");
  }
  return static_cast<std::size_t>(*v);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t max_batch = 4;
  std::size_t kv_budget = 600;
  std::size_t shards = 0;
  std::size_t block_tokens = 16;
  std::size_t shared_prefix = 0;
  std::string trace_path;
  std::string metrics_csv_path;
  std::string prom_path;
  std::string timeseries_path;
  std::size_t monitor_period_ms = 0;
  bool print_metrics = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* name) -> const char* {
      if (i + 1 >= argc) usage_exit(std::string(name) + " expects a value");
      return argv[++i];
    };
    if (arg == "--max-batch") {
      max_batch = parse_count_arg(next("--max-batch"), "--max-batch");
    } else if (arg == "--kv-budget") {
      kv_budget = parse_count_arg(next("--kv-budget"), "--kv-budget");
    } else if (arg == "--shards") {
      shards = parse_count_arg(next("--shards"), "--shards");
    } else if (arg == "--block-tokens") {
      block_tokens = parse_count_arg(next("--block-tokens"), "--block-tokens");
      if (block_tokens == 0) usage_exit("--block-tokens must be positive");
    } else if (arg == "--shared-prefix") {
      shared_prefix =
          parse_count_arg(next("--shared-prefix"), "--shared-prefix");
    } else if (arg == "--trace") {
      trace_path = next("--trace");
      if (trace_path.empty()) usage_exit("--trace expects a file path");
    } else if (arg == "--metrics") {
      print_metrics = true;
    } else if (arg == "--metrics-csv") {
      metrics_csv_path = next("--metrics-csv");
      if (metrics_csv_path.empty()) {
        usage_exit("--metrics-csv expects a file path");
      }
    } else if (arg == "--monitor-period-ms") {
      monitor_period_ms = parse_count_arg(next("--monitor-period-ms"),
                                          "--monitor-period-ms");
    } else if (arg == "--prom-out") {
      prom_path = next("--prom-out");
      if (prom_path.empty()) usage_exit("--prom-out expects a file path");
    } else if (arg == "--timeseries-out") {
      timeseries_path = next("--timeseries-out");
      if (timeseries_path.empty()) {
        usage_exit("--timeseries-out expects a file path");
      }
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: serve_sim [--max-batch N] [--kv-budget N] "
                   "[--shards N] [--block-tokens N] [--shared-prefix N] "
                   "[--trace FILE] [--metrics] [--metrics-csv FILE] "
                   "[--monitor-period-ms N] [--prom-out FILE] "
                   "[--timeseries-out FILE]\n";
      return 0;
    } else {
      usage_exit("unknown argument \"" + arg + "\"");
    }
  }
  if (shared_prefix > 0 && shards == 0) {
    usage_exit("--shared-prefix requires --shards (the prefix cache shares "
               "pool blocks)");
  }

  // Which kernel variants this run dispatches to (detected ISA, active
  // choice, any KF_CPU_ISA override) — printed once so logs are
  // comparable across hosts.
  std::cout << cpu::describe() << '\n';

  model::ModelConfig cfg = model::ModelConfig::gptj_like();
  cfg.max_seq_len = 4096;
  model::Transformer m(cfg);

  Rng rng(7);
  std::vector<serve::Request> requests;
  std::uint64_t id = 0;
  if (shared_prefix > 0) {
    // Shared-context workload: 8 staggered requests all opening with the
    // same few-shot context, each with its own short "question" tail.
    const auto ctx = make_shared_context(shared_prefix, cfg.vocab_size);
    for (std::size_t i = 0; i < 8; ++i) {
      serve::Request req = make_request(id++, 24, 24, /*arrival=*/i * 3,
                                        cfg, rng);
      req.prompt.insert(req.prompt.begin(), ctx.begin(), ctx.end());
      req.shared_prefix_hint = ctx.size();
      requests.push_back(std::move(req));
    }
  } else {
    // Bursty mixed workload: chat turns trickle in, summaries arrive in a
    // burst, one long document lands mid-stream.
    for (std::size_t i = 0; i < 4; ++i) {  // chat turns
      requests.push_back(
          make_request(id++, 48, 24, /*arrival=*/i * 6, cfg, rng));
    }
    for (std::size_t i = 0; i < 3; ++i) {  // summary burst at step 8
      requests.push_back(make_request(id++, 192, 32, /*arrival=*/8, cfg, rng));
    }
    requests.push_back(  // long document at step 12
        make_request(id++, 512, 48, /*arrival=*/12, cfg, rng));
  }

  serve::EngineConfig ec;
  ec.policy.kind = kv::PolicyKind::kKeyformer;
  ec.scheduler.max_batch_size = max_batch;
  ec.scheduler.max_concurrent_tokens = kv_budget;
  if (shards > 0) {
    ec.paged.enabled = true;
    ec.paged.n_shards = shards;
    ec.paged.block_tokens = block_tokens;
  }
  if (shared_prefix > 0) ec.prefix.enabled = true;
  serve::Engine engine(m, ec);

  std::cout << "serving " << requests.size()
            << " staggered requests (max_batch " << max_batch
            << ", kv budget "
            << (kv_budget == 0 ? std::string("unlimited")
                               : std::to_string(kv_budget) + " tokens")
            << ", keyformer @50% cache, "
            << (shards > 0 ? "paged: " + std::to_string(shards) +
                                 " shard(s) x " +
                                 std::to_string(block_tokens) +
                                 "-token blocks"
                           : std::string("contiguous caches"))
            << (shared_prefix > 0
                    ? ", shared " +
                          std::to_string(requests[0].shared_prefix_hint) +
                          "-token few-shot context + prefix cache"
                    : std::string())
            << ")\n\n";

  if (monitor_period_ms == 0 && !timeseries_path.empty()) {
    monitor_period_ms = 5;  // --timeseries-out needs samples to dump
  }
  obs::Monitor monitor({.period_ms = static_cast<double>(monitor_period_ms)});
  if (monitor_period_ms > 0) {
    serve::add_engine_probes(monitor, engine);
    monitor.start();
  }

  if (!trace_path.empty()) obs::set_trace_enabled(true);
  const auto responses = engine.run(requests);
  if (!trace_path.empty()) obs::set_trace_enabled(false);
  monitor.stop();

  Table t("per-request latency ledger (steps are engine decode ticks)");
  t.header({"req", "prompt", "tokens", "arrive", "start", "finish",
            "queued", "prefill_ms", "decode_ms", "decode_tok/s", "reason"});
  for (const auto& r : responses) {
    t.row({Table::num(static_cast<long long>(r.id)),
           Table::num(static_cast<long long>(r.prompt_len)),
           Table::num(static_cast<long long>(r.tokens.size())),
           Table::num(static_cast<long long>(r.arrival_step)),
           Table::num(static_cast<long long>(r.first_decode_step)),
           Table::num(static_cast<long long>(r.finish_step)),
           // Rejected/timed-out requests may never reach decode; clamp so
           // the ledger doesn't print a negative queue time.
           Table::num(static_cast<long long>(
               r.first_decode_step > r.arrival_step
                   ? r.first_decode_step - r.arrival_step
                   : 0)),
           Table::num(1e3 * r.prefill_seconds, 2),
           Table::num(1e3 * r.decode_seconds, 2),
           Table::num(r.decode_tokens_per_s(), 1),
           to_string(r.finish)});
  }
  t.print(std::cout);

  // Per-finish-reason summary: under deadlines, faults, or preemption
  // pressure not every request ends in kLength, and this line is where
  // the split shows up.
  std::size_t n_length = 0;
  std::size_t n_eos = 0;
  std::size_t n_rejected = 0;
  std::size_t n_timeout = 0;
  for (const auto& r : responses) {
    switch (r.finish) {
      case serve::FinishReason::kLength: ++n_length; break;
      case serve::FinishReason::kEos: ++n_eos; break;
      case serve::FinishReason::kRejected: ++n_rejected; break;
      case serve::FinishReason::kTimeout: ++n_timeout; break;
      case serve::FinishReason::kRunning: break;  // impossible post-run
    }
  }
  std::cout << "\nfinish reasons: " << n_length << " length, " << n_eos
            << " eos, " << n_rejected << " rejected, " << n_timeout
            << " timeout\n";

  const auto& st = engine.stats();
  if (st.preemptions + st.timeouts + st.rejections + st.reservation_retries +
          st.alloc_failures >
      0) {
    std::cout << "robustness: " << st.preemptions << " preemption(s) ("
              << st.resume_replayed_tokens << " tokens replayed on resume), "
              << st.timeouts << " timeout(s), " << st.rejections
              << " rejection(s), " << st.reservation_retries
              << " reservation retry(ies), " << st.alloc_failures
              << " emergency alloc fallback(s)\n";
  }
  std::cout << "engine: " << st.steps << " decode steps, peak batch "
            << st.max_batch << ", peak KV in use " << st.max_tokens_in_use
            << " tokens, aggregate decode throughput "
            << Table::num(st.decode_tokens_per_s(), 1) << " tok/s (isa "
            << st.isa << ")\n";
  if (shards > 0) {
    const double util =
        st.pool_capacity_blocks > 0
            ? static_cast<double>(st.pool_peak_used_blocks) /
                  static_cast<double>(st.pool_capacity_blocks)
            : 0.0;
    std::cout << "pool: " << st.pool_peak_used_blocks << " peak used / "
              << st.pool_capacity_blocks << " capacity blocks ("
              << Table::num(100.0 * util, 1) << "% peak utilization), peak "
              << st.max_blocks_in_use << " blocks reserved, worst internal "
              << "fragmentation " << Table::num(100.0 * st.max_fragmentation, 1)
              << "%\n";
  }
  if (shared_prefix > 0) {
    const std::size_t total_prompt =
        st.prefilled_tokens + st.prefix_tokens_reused;
    std::cout << "prefix cache: " << st.prefix_hits << " hits / "
              << st.prefix_misses << " misses ("
              << Table::num(100.0 * st.prefix_hit_rate(), 1)
              << "% hit rate), " << st.prefix_tokens_reused << " of "
              << total_prompt << " prompt tokens replayed from cache ("
              << Table::num(total_prompt > 0
                                ? 100.0 * st.prefix_tokens_reused /
                                      static_cast<double>(total_prompt)
                                : 0.0,
                            1)
              << "% prefill skipped), " << st.prefix_blocks_shared
              << " block adoptions served by sharing, "
              << st.prefix_cow_copies << " copy-on-write block copies\n";
  }
  if (print_metrics) {
    // Latency percentile table from the engine's real histograms (the
    // same Percentiles snapshots EngineStats carries).
    Table lt("latency percentiles (engine histograms, wall time)");
    lt.header({"metric", "count", "p50_ms", "p95_ms", "p99_ms", "mean_ms",
               "max_ms"});
    const auto latency_row = [&lt](const char* name,
                                   const obs::Percentiles& p) {
      std::vector<std::string> cells{name, Table::num(static_cast<long long>(
                                               p.count))};
      for (const std::string& c : obs::percentile_cells(p)) {
        cells.push_back(c);
      }
      cells.push_back(Table::num(1e3 * p.mean, 3));
      cells.push_back(Table::num(1e3 * p.max, 3));
      lt.row(cells);
    };
    latency_row("ttft", st.ttft);
    latency_row("inter_token", st.inter_token);
    latency_row("queue_wait", st.queue_wait);
    latency_row("step", st.step_latency);
    std::cout << '\n';
    lt.print(std::cout);

    Table mt("metrics registry");
    mt.header({"metric", "kind", "value"});
    for (const auto& row : engine.metrics().rows()) {
      switch (row.kind) {
        case obs::MetricRow::Kind::kCounter:
          mt.row({row.name, "counter",
                  Table::num(static_cast<long long>(row.count))});
          break;
        case obs::MetricRow::Kind::kGauge:
          mt.row({row.name, "gauge", Table::num(row.value, 3)});
          break;
        case obs::MetricRow::Kind::kHistogram:
          mt.row({row.name, "histogram",
                  Table::num(static_cast<long long>(row.count)) +
                      " samples, p99 " +
                      Table::num(1e3 * row.percentiles.p99, 3) + " ms"});
          break;
      }
    }
    std::cout << '\n';
    mt.print(std::cout);

    // Eviction introspection: the fig-3 position distribution, measured
    // on this serving run instead of the offline sweep.
    const kv::EvictionTelemetry report = engine.eviction_report();
    if (report.decisions() > 0) {
      const auto& totals = report.position_totals();
      std::uint64_t total = 0;
      for (const std::uint64_t c : totals) total += c;
      Table et("evicted-token positions (fraction of prompt+gen span)");
      et.header({"span", "evicted", "share"});
      constexpr std::size_t kB = kv::EvictionSummary::kPositionBuckets;
      for (std::size_t b = 0; b < kB; ++b) {
        const double lo = static_cast<double>(b) / kB;
        const double hi = static_cast<double>(b + 1) / kB;
        et.row({Table::num(lo, 3) + "-" + Table::num(hi, 3),
                Table::num(static_cast<long long>(totals[b])),
                Table::num(total > 0 ? 100.0 * static_cast<double>(totals[b]) /
                                           static_cast<double>(total)
                                     : 0.0,
                           1) +
                    "%"});
      }
      std::cout << '\n';
      et.print(std::cout);
      const kv::EvictionSummary es = report.summary();
      std::cout << "evictions: " << es.decisions << " decisions, "
                << es.tokens_evicted << " tokens evicted / " << es.tokens_kept
                << " kept; score at eviction min "
                << Table::num(es.score_min, 3) << ", p50 ~"
                << Table::num(es.score_p50, 3) << ", p90 ~"
                << Table::num(es.score_p90, 3) << ", max "
                << Table::num(es.score_max, 3) << '\n';
    }
  }

  if (!metrics_csv_path.empty()) {
    std::vector<std::string> header;
    std::vector<std::string> cells;
    const std::vector<std::pair<const char*, const obs::Percentiles*>> series =
        {{"ttft", &st.ttft},
         {"itl", &st.inter_token},
         {"queue_wait", &st.queue_wait},
         {"step", &st.step_latency}};
    for (const auto& [prefix, p] : series) {
      for (const std::string& col : obs::percentile_columns(prefix)) {
        header.push_back(col);
      }
      for (const std::string& c : obs::percentile_cells(*p)) {
        cells.push_back(c);
      }
    }
    CsvWriter csv(header);
    csv.add_row(cells);
    if (!csv.write_file(metrics_csv_path)) {
      std::cerr << "error: cannot write " << metrics_csv_path << '\n';
      return 1;
    }
    std::cout << "\nmetrics csv written to " << metrics_csv_path << '\n';
  }

  if (!prom_path.empty()) {
    if (!obs::write_prometheus(engine.metrics(), prom_path)) {
      std::cerr << "error: cannot write " << prom_path << '\n';
      return 1;
    }
    std::cout << "\nprometheus metrics written to " << prom_path << '\n';
  }

  if (!timeseries_path.empty()) {
    if (!obs::write_timeseries_json(monitor, timeseries_path)) {
      std::cerr << "error: cannot write " << timeseries_path << '\n';
      return 1;
    }
    std::cout << "\ntimeseries json (" << monitor.polls() << " poll(s) @ "
              << monitor_period_ms << " ms) written to " << timeseries_path
              << '\n';
  } else if (monitor_period_ms > 0) {
    std::cout << "\nmonitor: " << monitor.polls() << " poll(s) @ "
              << monitor_period_ms << " ms\n";
  }

  if (!trace_path.empty()) {
    if (!obs::write_chrome_trace(trace_path)) {
      std::cerr << "error: cannot write " << trace_path << '\n';
      return 1;
    }
    std::cout << "\ntrace: " << obs::trace_event_count() << " span(s) ("
              << obs::trace_dropped_count()
              << " dropped) written to " << trace_path
              << " -- load it in Perfetto or chrome://tracing\n";
  }

  std::cout << "Queued steps show admission control at work: requests wait "
               "when the batch or the KV-memory budget is full, and join "
               "mid-stream as earlier sequences retire. Lowering the cache "
               "ratio shrinks each sequence's footprint, admitting more of "
               "them at once (see bench_serve_throughput). With --shards the "
               "budget is enforced as whole-block reservations on a real "
               "pool, so fragmentation and placement become visible above.\n";
  return 0;
}
