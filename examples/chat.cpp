// Multi-turn conversation under a fixed KV budget: the cache stays at a
// constant size while the dialogue grows — the long-conversation serving
// scenario that motivates inference-time cache reduction (SODA task).
//
//   ./examples/chat [n_turns]    (default 6)
#include <cstdlib>
#include <iostream>

#include "keyformer/keyformer.h"

using namespace kf;

int main(int argc, char** argv) {
  const std::size_t n_turns = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                       : 6;

  model::ModelConfig cfg = model::ModelConfig::mpt_like();  // chat flavor
  model::Transformer model(cfg);
  data::DialogueConfig dc;
  dc.n_turns = 2;  // seed conversation

  Table t("conversation under a fixed 128-token KV budget (keyformer)");
  t.header({"turn", "history_tokens", "cache_tokens", "peak_cache",
            "reply_preview"});

  // Build the conversation incrementally: each turn appends the model's
  // own reply plus a fresh user turn, and the WHOLE history is re-served
  // under the same static budget.
  std::vector<data::Token> history =
      data::make_dialogue_sample(dc, 7).prompt;

  auto policy = kv::make_policy(kv::PolicyKind::kKeyformer);
  for (std::size_t turn = 0; turn < n_turns; ++turn) {
    model::GenerationConfig g;
    g.max_new_tokens = 24;
    g.banned_tokens = {data::kBos, data::kEos, data::kPad};
    // Fixed absolute budget: expressed as a ratio of this turn's history.
    const double ratio =
        std::min(1.0, 128.0 / static_cast<double>(history.size()));
    g.cache_ratio = ratio;
    const auto r = model::generate(model, history, *policy, g);

    std::string preview;
    for (std::size_t i = 0; i < std::min<std::size_t>(6, r.tokens.size());
         ++i) {
      preview += std::to_string(r.tokens[i]) + " ";
    }
    t.row({Table::num(static_cast<long long>(turn + 1)),
           Table::num(static_cast<long long>(history.size())),
           Table::num(static_cast<long long>(r.final_cache_sizes[0])),
           Table::num(static_cast<long long>(r.peak_cache_tokens)),
           preview + "..."});

    // Append the reply and a new user turn to the history.
    history.insert(history.end(), r.tokens.begin(), r.tokens.end());
    history.push_back(data::kSep);
    data::DialogueConfig next;
    next.n_turns = 1;
    next.seed = 100 + turn;
    const auto user = data::make_dialogue_sample(next, turn).prompt;
    history.insert(history.end(), user.begin() + 1, user.end());
  }
  t.print(std::cout);

  std::cout << "Note how history grows every turn while the served cache "
               "stays pinned near 128 tokens — the memory profile that "
               "enables larger batch sizes in Table 1.\n";
  return 0;
}
