// Long-context summarization (the Fig 8 scenario): a GovReport-like
// document, MPT-storywriter-like model, comparing H2O and Keyformer at an
// aggressive 30% budget — plus a per-section retention report showing
// *which parts of the document* each policy kept.
//
//   ./examples/long_context [doc_len]   (default 768)
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "keyformer/keyformer.h"

using namespace kf;

namespace {

/// Fraction of cached tokens per document decile, layer 0.
std::vector<double> cache_histogram(const model::Transformer& m,
                                    std::size_t doc_len) {
  std::vector<double> deciles(10, 0.0);
  const auto pos = m.cache(0).original_positions();
  for (const std::size_t p : pos) {
    if (p < doc_len) {
      deciles[std::min<std::size_t>(9, p * 10 / doc_len)] += 1.0;
    }
  }
  const double total = static_cast<double>(pos.size());
  for (double& d : deciles) d /= total;
  return deciles;
}

std::string bar(double frac) {
  const int n = static_cast<int>(frac * 50);
  return std::string(static_cast<std::size_t>(std::max(0, n)), '#');
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t doc_len =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 768;

  model::Transformer model(model::ModelConfig::mpt_storywriter_like());
  data::LongReportConfig lc;
  lc.doc_len = doc_len;
  const auto sample = data::make_long_report_sample(lc, 0);
  std::cout << "document: " << sample.prompt.size() << " tokens, "
            << lc.n_sections << " sections, "
            << sample.reference.size() << " reference facts\n\n";

  model::GenerationConfig g;
  g.max_new_tokens = 32;
  g.banned_tokens = {data::kBos, data::kEos, data::kSep, data::kPad};

  auto full = kv::make_policy(kv::PolicyKind::kFull);
  const auto full_run = model::generate(model, sample.prompt, *full, g);

  for (const auto kind : {kv::PolicyKind::kH2O, kv::PolicyKind::kKeyformer}) {
    auto policy = kv::make_policy(kind);
    g.cache_ratio = 0.3;
    const auto r = model::generate(model, sample.prompt, *policy, g);
    const auto fid = eval::rouge_all(r.tokens, full_run.tokens);
    const auto ref = eval::rouge_all(r.tokens, sample.reference);

    std::cout << "[" << to_string(kind) << " @30% cache]  fid R2 "
              << Table::num(fid.r2.f1, 3) << ", ref R1 "
              << Table::num(ref.r1.f1, 3) << ", cache "
              << r.final_cache_sizes[0] << " tokens\n";
    std::cout << "  kept tokens by document decile:\n";
    const auto hist = cache_histogram(model, sample.prompt.size());
    for (std::size_t d = 0; d < hist.size(); ++d) {
      std::cout << "   " << d * 10 << "-" << (d + 1) * 10 << "% |"
                << bar(hist[d]) << "\n";
    }
    std::cout << "\n";
  }

  std::cout << "Reading guide: H2O's keep-set leans on the early document "
               "(accumulated-attention bias); Keyformer spreads retention "
               "across the mid-document sections where this corpus plants "
               "its facts, plus the recent window at the end.\n";
  return 0;
}
