// Quickstart: generate with full attention vs Keyformer at a 50% KV-cache
// budget and compare outputs, cache sizes, and the projected speedup on an
// A100. Uses the word-level tokenizer so the flow reads like a real text
// pipeline.
//
//   ./examples/quickstart
#include <iostream>

#include "keyformer/keyformer.h"

using namespace kf;

int main() {
  // 1. A small document (the synthetic corpus generators in kf::data make
  //    larger, controlled ones; here we tokenize real words).
  const std::string document =
      "the spacecraft juno entered orbit around jupiter in july "
      "after a five year cruise from earth . juno carries nine "
      "instruments to study the planet magnetic field and deep "
      "atmosphere . the mission team said juno will skim the cloud "
      "tops every fifty three days . scientists expect juno to reveal "
      "how jupiter formed and how its storms persist . the probe is "
      "solar powered , a first at this distance from the sun . "
      "summarize :";

  data::WordVocab vocab;
  const std::vector<data::Token> prompt = tokenize_words(vocab, document);

  // 2. A model. The vocabulary must cover the tokenizer ids we just made.
  model::ModelConfig cfg = model::ModelConfig::gptj_like();
  cfg.vocab_size = 256;
  model::Transformer model(cfg);
  std::cout << "model: " << cfg.name << ", "
            << model.weights().parameter_count() << " parameters, "
            << to_string(cfg.positional) << " positions\n";
  std::cout << "prompt: " << prompt.size() << " tokens\n\n";

  // 3. Generate with full attention.
  model::GenerationConfig gen;
  gen.max_new_tokens = 24;
  gen.banned_tokens = {data::kBos, data::kEos, data::kSep, data::kPad};
  // Restrict generation to words the tokenizer has seen, so the output
  // detokenizes to real text.
  for (std::size_t id = vocab.size(); id < cfg.vocab_size; ++id) {
    gen.banned_tokens.push_back(static_cast<data::Token>(id));
  }
  auto full_policy = kv::make_policy(kv::PolicyKind::kFull);
  const auto full = model::generate(model, prompt, *full_policy, gen);
  std::cout << "[full attention]  cache=" << full.final_cache_sizes[0]
            << " tokens/layer\n  " << detokenize(vocab, full.tokens)
            << "\n\n";

  // 4. Generate with Keyformer at half the cache.
  gen.cache_ratio = 0.5;
  auto keyformer = kv::make_policy(kv::PolicyKind::kKeyformer);
  const auto reduced = model::generate(model, prompt, *keyformer, gen);
  std::cout << "[keyformer @50%]  cache=" << reduced.final_cache_sizes[0]
            << " tokens/layer (budget k=" << reduced.budget.max_tokens
            << ", recent w=" << reduced.budget.recent_window << ")\n  "
            << detokenize(vocab, reduced.tokens) << "\n\n";

  // 5. How close did the reduced cache stay to the baseline?
  const eval::RougeSuite fidelity = eval::rouge_all(reduced.tokens,
                                                    full.tokens);
  std::cout << "fidelity to full attention: ROUGE-1 "
            << Table::num(fidelity.r1.f1, 3) << ", ROUGE-2 "
            << Table::num(fidelity.r2.f1, 3) << ", ROUGE-L "
            << Table::num(fidelity.rl.f1, 3) << "\n";

  // 6. And what would that buy on real hardware?
  const perf::CostModel cm(perf::DeviceSpec::a100_80gb(),
                           perf::ModelSpec::mpt_7b());
  perf::WorkloadSpec w;
  w.prompt_len = 2048;
  w.gen_len = 2048;
  const double t_full = cm.run(w).total_seconds;
  w.cache_mode = perf::CacheMode::kStaticPrompt;
  w.cache_ratio = 0.5;
  w.policy_cost = perf::PolicyCost::kGumbelTopK;
  const double t_kf = cm.run(w).total_seconds;
  std::cout << "projected on MPT-7B/A100 at 2048+2048: "
            << Table::num(t_full, 1) << "s -> " << Table::num(t_kf, 1)
            << "s (" << Table::num(t_full / t_kf, 2) << "x speedup)\n";
  return 0;
}
