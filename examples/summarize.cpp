// Summarization walkthrough: run every eviction policy on a batch of
// CNN/DailyMail-like documents and print the quality/cache-size tradeoff —
// the single-binary version of the paper's Fig 7 story.
//
//   ./examples/summarize [cache_ratio]     (default 0.5)
#include <cstdlib>
#include <iostream>

#include "keyformer/keyformer.h"

using namespace kf;

int main(int argc, char** argv) {
  const double ratio = argc > 1 ? std::atof(argv[1]) : 0.5;

  model::Transformer model(model::ModelConfig::gptj_like());
  data::SummarizationConfig dc;
  const auto samples = data::make_summarization_set(dc, 6);
  std::cout << "task: summarize " << samples.size() << " documents of "
            << samples[0].prompt.size() << " tokens; KV budget "
            << static_cast<int>(ratio * 100) << "% of prompt\n\n";

  eval::EvalConfig ec;
  ec.max_new_tokens = 32;
  auto full = kv::make_policy(kv::PolicyKind::kFull);
  const auto outputs = eval::generate_outputs(model, samples, *full, ec);

  Table t("policy comparison (fidelity F1 vs full attention)");
  t.header({"policy", "fid_R1", "fid_R2", "fid_RL", "ref_R1",
            "cache_tokens", "sec/doc", "decode_tok/s"});

  const auto budget = kv::make_budget(samples[0].prompt.size(), ratio);
  for (const auto kind :
       {kv::PolicyKind::kFull, kv::PolicyKind::kWindow,
        kv::PolicyKind::kDilatedWindow, kv::PolicyKind::kRandom,
        kv::PolicyKind::kStreamingLLM, kv::PolicyKind::kKeyAttention,
        kv::PolicyKind::kH2O, kv::PolicyKind::kKeyformer}) {
    auto policy = kv::make_policy(kind);
    eval::EvalConfig rc = ec;
    rc.cache_ratio = kind == kv::PolicyKind::kFull ? 1.0 : ratio;
    const auto res =
        eval::evaluate_policy_on_task(model, samples, *policy, rc, &outputs);
    const std::size_t cache_tokens = kind == kv::PolicyKind::kFull
                                         ? samples[0].prompt.size() +
                                               ec.max_new_tokens - 1
                                         : budget.max_tokens;
    t.row({res.policy, Table::num(res.fid_rouge1, 3),
           Table::num(res.fid_rouge2, 3), Table::num(res.fid_rougeL, 3),
           Table::num(res.ref_rouge1, 3),
           Table::num(static_cast<long long>(cache_tokens)),
           Table::num(res.mean_wall_seconds, 3),
           Table::num(res.decode_tokens_per_s, 1)});
  }
  t.print(std::cout);

  std::cout << "Reading guide: 'window'/'streaming_llm' keep recency only "
               "and lose mid-document facts; 'key_attention' keeps key "
               "tokens only and loses local context; H2O and Keyformer mix "
               "both, and Keyformer's regularized score usually tracks the "
               "full-attention output closest.\n";
  return 0;
}
